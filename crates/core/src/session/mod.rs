//! The shared compilation session: one corpus, one memo store, one executor.
//!
//! The paper's evaluation sweeps the *same* corpus through overlapping
//! (machine, compiler-configuration) points — Fig. 3's 6-FU no-unroll point is
//! recomputed by the Section-2 copy-cost statistics, the IPC curves re-schedule
//! Fig. 6's clustered machines, and so on.  A [`Session`] turns the experiment
//! drivers into cheap aggregations over cached artifacts:
//!
//! * the corpus is generated **exactly once** per session and shared immutably;
//! * every sweep point is interned as a canonical [`CompilationKey`], and each
//!   (key, loop) pair compiles **at most once** per process, concurrency-safe,
//!   in a lock-striped memo store ([`store`]);
//! * with a cache directory configured, results additionally persist to a
//!   disk-backed content-addressed store ([`persist`]), so a fresh process —
//!   most importantly the `vliw-serve` daemon across restarts — answers warm
//!   requests with **zero** cold compiles;
//! * sweeps run on a work-stealing executor ([`executor`]) that claims loops from
//!   an atomic counter, so one pathological loop no longer idles a whole static
//!   chunk's worth of work.
//!
//! [`SessionBuilder`] is the one documented way to construct a session:
//!
//! ```
//! use vliw_core::pipeline::CompilerConfig;
//! use vliw_core::session::SessionBuilder;
//! use vliw_core::Machine;
//!
//! let session = SessionBuilder::quick(8, 42).build();
//! let compiler = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
//! let iis: Vec<Option<u32>> = session.sweep(|i, _| compiler.map_ok(i, |c| c.ii()));
//! assert_eq!(iis.len(), 8);
//! // A second sweep over the same point is served entirely from the cache.
//! let again: Vec<Option<u32>> = session.sweep(|i, _| compiler.map_ok(i, |c| c.ii()));
//! assert_eq!(iis, again);
//! assert!(session.stats().hits >= 8);
//! ```

pub mod artifact;
pub mod executor;
pub mod key;
pub mod persist;
pub mod store;
pub mod stream;

use std::path::PathBuf;
use std::sync::Arc;

use vliw_ddg::Loop;
use vliw_loopgen::generate_corpus;

pub use artifact::{LoopSummary, SimSummary, VerifySummary};
pub use executor::{par_map_indexed, try_par_map_indexed};
pub use key::CompilationKey;
pub use persist::{PersistStore, STORE_VERSION};
pub use store::{
    CachedCompilation, CachedResult, CachedRun, CachedSim, CachedVerify, SessionStats,
};
pub use stream::{compile_stream, peak_rss_kb, StreamConfig, StreamReport, DEFAULT_SHARD_SIZE};

use crate::error::VliwError;
use crate::experiments::{default_threads, ExperimentConfig};
use crate::pipeline::{Compilation, Compiler, CompilerConfig};
use store::{KeyEntry, MemoStore};

/// A shared compilation session over one corpus.
///
/// Cheap to share by reference across drivers; all interior state is
/// concurrency-safe.  See the [module docs](self) for the design.
pub struct Session {
    config: ExperimentConfig,
    corpus: Arc<Vec<Loop>>,
    store: MemoStore,
}

impl Session {
    /// Creates a session, generating the configured corpus exactly once.
    ///
    /// Persistence is best-effort here: an unusable `cache_dir` silently
    /// degrades to an in-memory-only session.  Use [`Session::try_new`] (or
    /// [`SessionBuilder::try_build`]) to fail loudly instead.
    pub fn new(config: ExperimentConfig) -> Self {
        let persist =
            config.cache_dir.as_deref().and_then(|dir| PersistStore::open(dir).ok()).map(Arc::new);
        Self::with_persist(config, persist)
    }

    /// Creates a session like [`Session::new`] but reports a configured cache
    /// directory that cannot be opened as an error.
    pub fn try_new(config: ExperimentConfig) -> Result<Self, VliwError> {
        let persist = match config.cache_dir.as_deref() {
            Some(dir) => Some(Arc::new(PersistStore::open(dir)?)),
            None => None,
        };
        Ok(Self::with_persist(config, persist))
    }

    fn with_persist(config: ExperimentConfig, persist: Option<Arc<PersistStore>>) -> Self {
        let corpus = {
            let _span = vliw_obs::span!("corpusgen", config.corpus.num_loops);
            Arc::new(generate_corpus(&config.corpus))
        };
        Session { config, corpus, store: MemoStore::new(persist) }
    }

    /// A session over a reduced corpus, for tests and quick runs (the session
    /// equivalent of [`ExperimentConfig::quick`]).
    pub fn quick(num_loops: usize, seed: u64) -> Self {
        SessionBuilder::quick(num_loops, seed).build()
    }

    /// The experiment configuration this session was created from.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The shared corpus.
    pub fn corpus(&self) -> &[Loop] {
        &self.corpus
    }

    /// Number of loops in the corpus.
    pub fn num_loops(&self) -> usize {
        self.corpus.len()
    }

    /// Worker-thread count of the session's sweeps.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// True when the session has a persistent (disk) artifact store.
    pub fn is_persistent(&self) -> bool {
        self.store.persist().is_some()
    }

    /// Disk-probe counters of the persistent store, `(loads, writes, rejects)`
    /// — the daemon's cache hit / miss / corruption telemetry.  `None` for an
    /// in-memory-only session.
    pub fn persist_counters(&self) -> Option<(u64, u64, u64)> {
        self.store.persist().map(|p| p.counter_values())
    }

    /// Interns `config` as a sweep point and returns a handle that compiles corpus
    /// loops through the memo store.  The canonical key is hashed once here, not
    /// once per loop.
    pub fn compiler(&self, config: CompilerConfig) -> SessionCompiler<'_> {
        let key = CompilationKey::of(&config);
        let entry = self.store.entry(key, self.corpus.len(), || Compiler::new(config));
        SessionCompiler { session: self, entry }
    }

    /// Runs `f` over every corpus loop on the work-stealing executor and returns
    /// the results in corpus order.
    pub fn sweep<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &Loop) -> R + Sync,
    {
        par_map_indexed(self.corpus.len(), self.threads(), |i| f(i, &self.corpus[i]))
    }

    /// Fallible form of [`Session::sweep`]: the first error (lowest corpus
    /// index) aborts the sweep and is returned; worker panics surface as
    /// [`VliwError::WorkerPanic`] instead of unwinding.
    pub fn try_sweep<R, F>(&self, f: F) -> Result<Vec<R>, VliwError>
    where
        R: Send,
        F: Fn(usize, &Loop) -> Result<R, VliwError> + Sync,
    {
        try_par_map_indexed(self.corpus.len(), self.threads(), |i| f(i, &self.corpus[i]))
    }

    /// Runs `f` over the corpus loops at `indices` (a filtered subset, e.g. the
    /// resource-constrained loops of Fig. 9) and returns the results in the order
    /// of `indices`.
    pub fn sweep_indices<R, F>(&self, indices: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &Loop) -> R + Sync,
    {
        par_map_indexed(indices.len(), self.threads(), |k| {
            let i = indices[k];
            f(i, &self.corpus[i])
        })
    }

    /// Fallible form of [`Session::sweep_indices`].
    pub fn try_sweep_indices<R, F>(&self, indices: &[usize], f: F) -> Result<Vec<R>, VliwError>
    where
        R: Send,
        F: Fn(usize, &Loop) -> Result<R, VliwError> + Sync,
    {
        try_par_map_indexed(indices.len(), self.threads(), |k| {
            let i = indices[k];
            f(i, &self.corpus[i])
        })
    }

    /// Cache statistics accumulated so far.
    pub fn stats(&self) -> SessionStats {
        self.store.stats()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("corpus_size", &self.corpus.len())
            .field("threads", &self.config.threads)
            .field("persistent", &self.is_persistent())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The one documented way to construct a [`Session`]: corpus size, seed,
/// thread count and cache directory in one place, with the paper's defaults
/// for everything unset.
///
/// `Session::quick(n, seed)` and `Session::new(config)` remain as thin
/// wrappers; both delegate here or to the same constructor internals.
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    corpus_size: Option<usize>,
    seed: Option<u64>,
    threads: Option<usize>,
    cache_dir: Option<PathBuf>,
}

impl SessionBuilder {
    /// A builder at the paper's defaults (1258-loop corpus, paper seed,
    /// [`default_threads`] workers, no persistence).
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// A builder for a reduced corpus — the [`Session::quick`] shape.
    pub fn quick(corpus_size: usize, seed: u64) -> Self {
        SessionBuilder::new().corpus_size(corpus_size).seed(seed)
    }

    /// Sets the number of corpus loops.
    pub fn corpus_size(mut self, corpus_size: usize) -> Self {
        self.corpus_size = Some(corpus_size);
        self
    }

    /// Sets the corpus generator seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the sweep worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Enables the persistent artifact store under `dir`.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The [`ExperimentConfig`] this builder resolves to.
    pub fn config(&self) -> ExperimentConfig {
        let mut corpus = vliw_loopgen::CorpusConfig::paper_default();
        if let Some(n) = self.corpus_size {
            corpus.num_loops = n;
        }
        if let Some(seed) = self.seed {
            corpus.seed = seed;
        }
        ExperimentConfig {
            corpus,
            threads: self.threads.unwrap_or_else(default_threads),
            cache_dir: self.cache_dir.clone(),
        }
    }

    /// Builds the session; an unusable cache directory silently disables
    /// persistence (see [`Session::new`]).
    pub fn build(&self) -> Session {
        Session::new(self.config())
    }

    /// Builds the session, failing loudly if the cache directory cannot be
    /// opened.
    pub fn try_build(&self) -> Result<Session, VliwError> {
        Session::try_new(self.config())
    }
}

/// A handle to one interned sweep point of a [`Session`].
///
/// Cloneable and `Sync`; compiling through it hits the memo store first.  The
/// default methods traffic in serializable summaries ([`LoopSummary`] /
/// [`SimSummary`]) — the drivers' currency and what the persistent store can
/// serve without compiling.  The `*_full` variants return the unserialized
/// artifacts for consumers that replay schedules.
#[derive(Clone)]
pub struct SessionCompiler<'s> {
    session: &'s Session,
    entry: Arc<KeyEntry>,
}

impl SessionCompiler<'_> {
    /// Compiles (or recalls) the summary of the corpus loop at `index`.
    pub fn compile(&self, index: usize) -> CachedResult {
        self.entry.compile(index, &self.session.corpus[index], self.session.store.counters())
    }

    /// Compiles the corpus loop at `index` and applies `f` to its summary;
    /// `None` if the loop failed to schedule under this configuration.  The
    /// convenience form the drivers use to extract their per-loop metrics.
    pub fn map_ok<R>(&self, index: usize, f: impl FnOnce(&LoopSummary) -> R) -> Option<R> {
        self.compile(index).as_ref().as_ref().ok().map(f)
    }

    /// Compiles (or recalls) the *full* compilation of the loop at `index` —
    /// schedule, transformed DDG and queue allocation included.
    pub fn compile_full(&self, index: usize) -> CachedCompilation {
        self.entry.compile_full(index, &self.session.corpus[index], self.session.store.counters())
    }

    /// Applies `f` to the full compilation of the loop at `index`; `None` if
    /// the loop failed to schedule under this configuration.
    pub fn map_full<R>(&self, index: usize, f: impl FnOnce(&Compilation) -> R) -> Option<R> {
        self.compile_full(index).as_ref().as_ref().ok().map(f)
    }

    /// Simulates the corpus loop at `index` over `trip_count` iterations,
    /// compiling it first if needed; memoised per (sweep point, loop, trip
    /// count), so repeated sweeps — and overlapping trip-count grids across
    /// drivers — execute each run exactly once.  `None` if the loop does not
    /// schedule under this configuration.
    pub fn simulate(&self, index: usize, trip_count: u64) -> Option<CachedSim> {
        self.entry.simulate(
            index,
            &self.session.corpus[index],
            trip_count,
            self.session.store.counters(),
        )
    }

    /// Like [`SessionCompiler::simulate`] but returns the full [`vliw_sim::SimRun`]
    /// with its recorded violations, executing the simulator in-process if the
    /// memoised entry came from disk.
    pub fn simulate_full(&self, index: usize, trip_count: u64) -> Option<CachedRun> {
        self.entry.simulate_full(
            index,
            &self.session.corpus[index],
            trip_count,
            self.session.store.counters(),
        )
    }

    /// Statically verifies the corpus loop at `index` with `vliw-verify`,
    /// compiling it first if needed; memoised per (sweep point, loop) like the
    /// compile slot — a verification is a steady-state proof, so there is no
    /// trip count to key on.  `None` if the loop does not schedule under this
    /// configuration.
    pub fn verify(&self, index: usize) -> Option<CachedVerify> {
        self.entry.verify(index, &self.session.corpus[index], self.session.store.counters())
    }

    /// The configuration this handle compiles with.
    pub fn config(&self) -> &CompilerConfig {
        self.entry.compiler().config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_machine::Machine;

    #[test]
    fn session_generates_the_configured_corpus_once() {
        let session = Session::quick(9, 5);
        assert_eq!(session.num_loops(), 9);
        assert_eq!(session.corpus().len(), 9);
        // The corpus matches what the config would generate on its own.
        assert_eq!(session.config().corpus().len(), 9);
        assert_eq!(session.corpus()[3].name, session.config().corpus()[3].name);
    }

    #[test]
    fn builder_matches_the_quick_constructor() {
        let built = SessionBuilder::quick(9, 5).threads(2).build();
        let quick = Session::quick(9, 5);
        assert_eq!(built.num_loops(), quick.num_loops());
        assert_eq!(built.corpus()[4].name, quick.corpus()[4].name);
        assert_eq!(built.threads(), 2);
        assert!(!built.is_persistent());
        // The default builder resolves to the paper-sized corpus.
        assert_eq!(SessionBuilder::new().config().corpus.num_loops, 1258);
    }

    #[test]
    fn try_build_rejects_an_unusable_cache_dir() {
        // A path *under an existing file* cannot be created as a directory.
        let file = std::env::temp_dir().join(format!("vliw-not-a-dir-{}", std::process::id()));
        std::fs::write(&file, b"occupied").unwrap();
        let err = SessionBuilder::quick(2, 1)
            .cache_dir(file.join("cache"))
            .try_build()
            .expect_err("a file in the way must fail loudly");
        assert_eq!(err.kind(), "io");
        // `build` degrades to an in-memory session instead.
        let session = SessionBuilder::quick(2, 1).cache_dir(file.join("cache")).build();
        assert!(!session.is_persistent());
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn equal_configs_share_one_sweep_point() {
        let session = Session::quick(4, 11);
        let a = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
        let b = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
        let ra = a.compile(0);
        let rb = b.compile(0);
        assert!(Arc::ptr_eq(&ra, &rb), "equal configs must share cached artifacts");
        let stats = session.stats();
        assert_eq!(stats.unique_keys, 1);
        assert_eq!(stats.compilations, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn cached_results_equal_fresh_compilation() {
        let session = Session::quick(6, 23);
        let config = CompilerConfig::paper_defaults(Machine::paper_single(12));
        let compiler = session.compiler(config.clone());
        let fresh = Compiler::new(config);
        for (i, lp) in session.corpus().iter().enumerate() {
            let cached = compiler.compile(i);
            let direct = fresh.compile(lp);
            match (cached.as_ref(), &direct) {
                (Ok(c), Ok(d)) => {
                    assert_eq!(c.ii(), d.ii());
                    assert_eq!(c.stage_count, d.stage_count);
                    assert_eq!(c.queues_required(), d.queues_required());
                }
                (Err(c), Err(d)) => assert_eq!(c.to_string(), d.to_string()),
                (c, d) => panic!("cached {c:?} disagrees with fresh {d:?}"),
            }
        }
    }

    #[test]
    fn simulate_memoizes_per_trip_count_and_matches_the_compilation() {
        let session = Session::quick(5, 29);
        let compiler = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
        for i in 0..session.num_loops() {
            let Some(run) = compiler.simulate(i, 50) else { continue };
            let again = compiler.simulate(i, 50).expect("memoised run");
            assert!(Arc::ptr_eq(&run, &again));
            let c = compiler.compile(i);
            let c = c.as_ref().as_ref().expect("simulated loops compiled");
            assert!(run.is_clean(), "loop {i}: {} violations", run.total_violations());
            assert_eq!(run.measurement.total_cycles, c.total_cycles(50));
        }
        let stats = session.stats();
        assert!(stats.sim_runs > 0);
        assert!(stats.sim_hits >= stats.sim_runs, "every run was requested twice");
    }

    #[test]
    fn try_sweep_collects_errors_from_the_closure() {
        let session = Session::quick(6, 7);
        let ok: Vec<usize> = session.try_sweep(|i, _| Ok(i)).expect("no failures");
        assert_eq!(ok, (0..6).collect::<Vec<_>>());
        let err =
            session
                .try_sweep(|i, _| {
                    if i >= 3 {
                        Err(VliwError::internal(format!("loop {i}")))
                    } else {
                        Ok(i)
                    }
                })
                .expect_err("sweep must fail");
        assert_eq!(err.to_string(), "internal error: loop 3");
    }

    #[test]
    fn sweep_indices_respects_the_subset_order() {
        let session = Session::quick(10, 3);
        let indices = [7usize, 2, 9];
        let names: Vec<String> = session.sweep_indices(&indices, |i, lp| {
            assert_eq!(session.corpus()[i].name, lp.name);
            lp.name.clone()
        });
        assert_eq!(names.len(), 3);
        assert_eq!(names[0], session.corpus()[7].name);
        assert_eq!(names[1], session.corpus()[2].name);
        assert_eq!(names[2], session.corpus()[9].name);
    }
}
