//! The shared compilation session: one corpus, one memo store, one executor.
//!
//! The paper's evaluation sweeps the *same* corpus through overlapping
//! (machine, compiler-configuration) points — Fig. 3's 6-FU no-unroll point is
//! recomputed by the Section-2 copy-cost statistics, the IPC curves re-schedule
//! Fig. 6's clustered machines, and so on.  A [`Session`] turns the experiment
//! drivers into cheap aggregations over cached artifacts:
//!
//! * the corpus is generated **exactly once** per session and shared immutably;
//! * every sweep point is interned as a canonical [`CompilationKey`], and each
//!   (key, loop) pair compiles **at most once** per process, concurrency-safe,
//!   in a lock-striped memo store ([`store`]);
//! * sweeps run on a work-stealing executor ([`executor`]) that claims loops from
//!   an atomic counter, so one pathological loop no longer idles a whole static
//!   chunk's worth of work.
//!
//! ```
//! use vliw_core::pipeline::CompilerConfig;
//! use vliw_core::session::Session;
//! use vliw_core::Machine;
//!
//! let session = Session::quick(8, 42);
//! let compiler = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
//! let iis: Vec<Option<u32>> = session.sweep(|i, _| compiler.map_ok(i, |c| c.ii()));
//! assert_eq!(iis.len(), 8);
//! // A second sweep over the same point is served entirely from the cache.
//! let again: Vec<Option<u32>> = session.sweep(|i, _| compiler.map_ok(i, |c| c.ii()));
//! assert_eq!(iis, again);
//! assert!(session.stats().hits >= 8);
//! ```

pub mod executor;
pub mod key;
pub mod store;

use std::sync::Arc;

use vliw_ddg::Loop;
use vliw_loopgen::generate_corpus;

pub use executor::par_map_indexed;
pub use key::CompilationKey;
pub use store::{CachedResult, CachedSim, SessionStats};

use crate::experiments::ExperimentConfig;
use crate::pipeline::{Compilation, Compiler, CompilerConfig};
use store::{KeyEntry, MemoStore};

/// A shared compilation session over one corpus.
///
/// Cheap to share by reference across drivers; all interior state is
/// concurrency-safe.  See the [module docs](self) for the design.
pub struct Session {
    config: ExperimentConfig,
    corpus: Arc<Vec<Loop>>,
    store: MemoStore,
}

impl Session {
    /// Creates a session, generating the configured corpus exactly once.
    pub fn new(config: ExperimentConfig) -> Self {
        let corpus = Arc::new(generate_corpus(&config.corpus));
        Session { config, corpus, store: MemoStore::new() }
    }

    /// A session over a reduced corpus, for tests and quick runs (the session
    /// equivalent of [`ExperimentConfig::quick`]).
    pub fn quick(num_loops: usize, seed: u64) -> Self {
        Session::new(ExperimentConfig::quick(num_loops, seed))
    }

    /// The experiment configuration this session was created from.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The shared corpus.
    pub fn corpus(&self) -> &[Loop] {
        &self.corpus
    }

    /// Number of loops in the corpus.
    pub fn num_loops(&self) -> usize {
        self.corpus.len()
    }

    /// Worker-thread count of the session's sweeps.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// Interns `config` as a sweep point and returns a handle that compiles corpus
    /// loops through the memo store.  The canonical key is hashed once here, not
    /// once per loop.
    pub fn compiler(&self, config: CompilerConfig) -> SessionCompiler<'_> {
        let key = CompilationKey::of(&config);
        let entry = self.store.entry(key, self.corpus.len(), || Compiler::new(config));
        SessionCompiler { session: self, entry }
    }

    /// Runs `f` over every corpus loop on the work-stealing executor and returns
    /// the results in corpus order.
    pub fn sweep<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &Loop) -> R + Sync,
    {
        par_map_indexed(self.corpus.len(), self.threads(), |i| f(i, &self.corpus[i]))
    }

    /// Runs `f` over the corpus loops at `indices` (a filtered subset, e.g. the
    /// resource-constrained loops of Fig. 9) and returns the results in the order
    /// of `indices`.
    pub fn sweep_indices<R, F>(&self, indices: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &Loop) -> R + Sync,
    {
        par_map_indexed(indices.len(), self.threads(), |k| {
            let i = indices[k];
            f(i, &self.corpus[i])
        })
    }

    /// Cache statistics accumulated so far.
    pub fn stats(&self) -> SessionStats {
        self.store.stats()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("corpus_size", &self.corpus.len())
            .field("threads", &self.config.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A handle to one interned sweep point of a [`Session`].
///
/// Cloneable and `Sync`; compiling through it hits the memo store first.
#[derive(Clone)]
pub struct SessionCompiler<'s> {
    session: &'s Session,
    entry: Arc<KeyEntry>,
}

impl SessionCompiler<'_> {
    /// Compiles the corpus loop at `index`, served from the cache when the
    /// (key, loop) pair has been compiled before.
    pub fn compile(&self, index: usize) -> CachedResult {
        self.entry.compile(index, &self.session.corpus[index], self.session.store.counters())
    }

    /// Compiles the corpus loop at `index` and applies `f` to the compilation;
    /// `None` if the loop failed to schedule under this configuration.  The
    /// convenience form the drivers use to extract their per-loop metrics.
    pub fn map_ok<R>(&self, index: usize, f: impl FnOnce(&Compilation) -> R) -> Option<R> {
        self.compile(index).as_ref().as_ref().ok().map(f)
    }

    /// Simulates the corpus loop at `index` over `trip_count` iterations,
    /// compiling it first if needed; memoised per (sweep point, loop, trip
    /// count), so repeated sweeps — and overlapping trip-count grids across
    /// drivers — execute each run exactly once.  `None` if the loop does not
    /// schedule under this configuration.
    pub fn simulate(&self, index: usize, trip_count: u64) -> Option<CachedSim> {
        self.entry.simulate(
            index,
            &self.session.corpus[index],
            trip_count,
            self.session.store.counters(),
        )
    }

    /// The configuration this handle compiles with.
    pub fn config(&self) -> &CompilerConfig {
        self.entry.compiler().config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_machine::Machine;

    #[test]
    fn session_generates_the_configured_corpus_once() {
        let session = Session::quick(9, 5);
        assert_eq!(session.num_loops(), 9);
        assert_eq!(session.corpus().len(), 9);
        // The corpus matches what the config would generate on its own.
        assert_eq!(session.config().corpus().len(), 9);
        assert_eq!(session.corpus()[3].name, session.config().corpus()[3].name);
    }

    #[test]
    fn equal_configs_share_one_sweep_point() {
        let session = Session::quick(4, 11);
        let a = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
        let b = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
        let ra = a.compile(0);
        let rb = b.compile(0);
        assert!(Arc::ptr_eq(&ra, &rb), "equal configs must share cached artifacts");
        let stats = session.stats();
        assert_eq!(stats.unique_keys, 1);
        assert_eq!(stats.compilations, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn cached_results_equal_fresh_compilation() {
        let session = Session::quick(6, 23);
        let config = CompilerConfig::paper_defaults(Machine::paper_single(12));
        let compiler = session.compiler(config.clone());
        let fresh = Compiler::new(config);
        for (i, lp) in session.corpus().iter().enumerate() {
            let cached = compiler.compile(i);
            let direct = fresh.compile(lp);
            match (cached.as_ref(), &direct) {
                (Ok(c), Ok(d)) => {
                    assert_eq!(c.ii(), d.ii());
                    assert_eq!(c.stage_count, d.stage_count);
                    assert_eq!(c.queues_required(), d.queues_required());
                }
                (Err(c), Err(d)) => assert_eq!(c.to_string(), d.to_string()),
                (c, d) => panic!("cached {c:?} disagrees with fresh {d:?}"),
            }
        }
    }

    #[test]
    fn simulate_memoizes_per_trip_count_and_matches_the_compilation() {
        let session = Session::quick(5, 29);
        let compiler = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
        for i in 0..session.num_loops() {
            let Some(run) = compiler.simulate(i, 50) else { continue };
            let again = compiler.simulate(i, 50).expect("memoised run");
            assert!(Arc::ptr_eq(&run, &again));
            let c = compiler.compile(i);
            let c = c.as_ref().as_ref().expect("simulated loops compiled");
            assert!(run.is_clean(), "loop {i}: {:?}", run.violations);
            assert_eq!(run.measurement.total_cycles, c.schedule.total_cycles(50));
        }
        let stats = session.stats();
        assert!(stats.sim_runs > 0);
        assert!(stats.sim_hits >= stats.sim_runs, "every run was requested twice");
    }

    #[test]
    fn sweep_indices_respects_the_subset_order() {
        let session = Session::quick(10, 3);
        let indices = [7usize, 2, 9];
        let names: Vec<String> = session.sweep_indices(&indices, |i, lp| {
            assert_eq!(session.corpus()[i].name, lp.name);
            lp.name.clone()
        });
        assert_eq!(names.len(), 3);
        assert_eq!(names[0], session.corpus()[7].name);
        assert_eq!(names[1], session.corpus()[2].name);
        assert_eq!(names[2], session.corpus()[9].name);
    }
}
