//! Serializable per-loop artifacts: the closed metric set the drivers consume.
//!
//! A full [`Compilation`] drags a [`vliw_ddg::Ddg`], a schedule and a queue
//! allocation along — structures that exist to be *recomputed*, not shipped.
//! Every experiment driver, however, consumes only a small closed set of
//! numbers per loop (II, stage count, IPC, queue maxima, communication
//! maxima), and the quantities derived from the schedule — total cycles,
//! dynamic IPC at a trip count, machine feasibility — all have closed forms
//! over those numbers.  [`LoopSummary`] captures exactly that set, which makes
//! it (a) serde-serializable for the persistent store and the wire, and
//! (b) sufficient for a warm daemon to answer every figure request with zero
//! cold compiles.
//!
//! Consumers that genuinely need the full artifact (the cross-check tests
//! replaying a schedule through the simulator, the kernel benches) use the
//! session's `*_full` APIs instead, which memoise the unserialized
//! [`Compilation`] in process as before.

use serde::{Deserialize, Serialize};
use vliw_analysis::IpcReport;
use vliw_machine::Machine;
use vliw_partition::CommStats;
use vliw_sim::{SimMeasurement, SimRun};
use vliw_verify::{Verification, Violation};

use crate::pipeline::Compilation;

/// The serializable summary of one compiled loop: everything the experiment
/// drivers read, nothing the pipeline would have to re-derive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopSummary {
    /// Name of the source loop.
    pub loop_name: String,
    /// Unroll factor applied (1 = not unrolled).
    pub unroll_factor: u32,
    /// Number of copy operations inserted.
    pub num_copies: usize,
    /// Operations in the scheduled body (after unrolling and copy insertion).
    pub body_ops: usize,
    /// Initiation interval of the schedule.
    pub ii: u32,
    /// Resource-constrained lower bound.
    pub res_mii: u32,
    /// Recurrence-constrained lower bound.
    pub rec_mii: u32,
    /// `max(ResMII, RecMII)`.
    pub mii: u32,
    /// Stage count of the schedule.
    pub stage_count: u32,
    /// Static and dynamic issue rates of the compilation.
    pub ipc: IpcReport,
    /// Number of queues of the machine-wide allocation (Fig. 3's quantity).
    pub queues_required: usize,
    /// Largest queue depth of the machine-wide allocation.
    pub max_queue_depth: usize,
    /// Registers needed by a conventional register file (MaxLive baseline).
    pub registers_required: usize,
    /// Communication statistics; present only for clustered machines.
    pub comm: Option<CommStats>,
}

impl LoopSummary {
    /// The initiation interval (method form, mirroring [`Compilation::ii`]).
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of queues required (mirroring [`Compilation::queues_required`]).
    pub fn queues_required(&self) -> usize {
        self.queues_required
    }

    /// True if the scheduler achieved the MII lower bound.
    pub fn achieved_mii(&self) -> bool {
        self.ii == self.mii.max(1)
    }

    /// Exact cycle count of executing the schedule for `trip_count` body
    /// iterations — the closed form of [`vliw_sched::Schedule::total_cycles`]:
    /// `(SC − 1 + N) · II`, 0 for an empty schedule or zero iterations.
    pub fn total_cycles(&self, trip_count: u64) -> u64 {
        if self.body_ops == 0 || trip_count == 0 {
            return 0;
        }
        (u64::from(self.stage_count) - 1 + trip_count) * u64::from(self.ii)
    }

    /// Dynamic issue rate over `trip_count` body iterations — the closed form
    /// of [`vliw_analysis::dynamic_ipc`] over this summary's body size.
    pub fn dynamic_ipc_at(&self, trip_count: u64) -> f64 {
        if trip_count == 0 {
            return 0.0;
        }
        let total_ops = self.body_ops as u64 * trip_count;
        total_ops as f64 / self.total_cycles(trip_count) as f64
    }

    /// Pool-split storage feasibility on `machine` — the same dispatch as
    /// [`Compilation::fits_machine`], evaluated over the summarised maxima.
    pub fn fits_machine(&self, machine: &Machine) -> bool {
        match &self.comm {
            Some(comm) => comm.fits_pools(machine),
            None => {
                let cfg = machine.cluster(vliw_machine::ClusterId(0));
                self.queues_required <= cfg.private_queues
                    && self.max_queue_depth <= cfg.queue_capacity
            }
        }
    }
}

impl Compilation {
    /// Extracts the serializable summary of this compilation.
    pub fn summarize(&self) -> LoopSummary {
        LoopSummary {
            loop_name: self.loop_name.clone(),
            unroll_factor: self.unroll_factor,
            num_copies: self.num_copies,
            body_ops: self.transformed.num_ops(),
            ii: self.ii(),
            res_mii: self.res_mii,
            rec_mii: self.rec_mii,
            mii: self.mii,
            stage_count: self.stage_count,
            ipc: self.ipc,
            queues_required: self.queues.num_queues(),
            max_queue_depth: self.queues.max_queue_depth(),
            registers_required: self.registers_required,
            comm: self.comm.clone(),
        }
    }
}

/// The serializable summary of one simulation run: the full measurement plus
/// the fault totals.  The recorded [`vliw_sim::SimViolation`] details stay on
/// the in-process [`SimRun`] (they are a debugging aid, not a metric); the
/// summary keeps their count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// What the run measured.
    pub measurement: SimMeasurement,
    /// Total schedule faults observed.
    pub schedule_faults: u64,
    /// Total capacity faults observed.
    pub capacity_faults: u64,
    /// Number of violations recorded in detail by the run.
    pub recorded_violations: usize,
}

impl SimSummary {
    /// Total violations of both classes.
    pub fn total_violations(&self) -> u64 {
        self.schedule_faults + self.capacity_faults
    }

    /// True if the run completed without a single violation of any class.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// True if the schedule kept every promise it made (capacity overflows are
    /// a machine-sizing property, not a schedule fault).
    pub fn schedule_is_sound(&self) -> bool {
        self.schedule_faults == 0
    }
}

impl From<&SimRun> for SimSummary {
    fn from(run: &SimRun) -> Self {
        SimSummary {
            measurement: run.measurement.clone(),
            schedule_faults: run.schedule_faults,
            capacity_faults: run.capacity_faults,
            recorded_violations: run.violations.len(),
        }
    }
}

/// The serializable summary of one static verification: the verdict counters,
/// the steady-state maxima the sweep classifiers read, and the full violation
/// list (the static checker reports each defect exactly once, so the list is
/// bounded by the schedule's structure and cheap to keep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifySummary {
    /// Violations indicting the schedule or allocation structure.
    pub schedule_faults: u64,
    /// Pool overflows and under-declared queue depths.
    pub capacity_faults: u64,
    /// Largest private-QRF steady-state peak over all clusters.
    pub max_private_peak: usize,
    /// Largest ring-link steady-state peak over all directed links.
    pub max_comm_peak: usize,
    /// Steady-state copy-bus utilisation.
    pub copy_bus_utilisation: f64,
    /// Every violation the verifier proved, in deterministic check order.
    pub violations: Vec<Violation>,
}

impl VerifySummary {
    /// Total violations of both classes.
    pub fn total_violations(&self) -> u64 {
        self.schedule_faults + self.capacity_faults
    }

    /// True if every invariant proved out.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// True if the schedule keeps every promise it made (mirrors
    /// [`SimSummary::schedule_is_sound`]).
    pub fn schedule_is_sound(&self) -> bool {
        self.schedule_faults == 0
    }
}

impl From<&Verification> for VerifySummary {
    fn from(v: &Verification) -> Self {
        VerifySummary {
            schedule_faults: v.schedule_faults,
            capacity_faults: v.capacity_faults,
            max_private_peak: v.max_private_peak(),
            max_comm_peak: v.max_comm_peak(),
            copy_bus_utilisation: v.copy_bus_utilisation,
            violations: v.violations.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Compiler, CompilerConfig};
    use vliw_analysis::dynamic_ipc;
    use vliw_ddg::{kernels, LatencyModel};

    fn lat() -> LatencyModel {
        LatencyModel::default()
    }

    #[test]
    fn summary_closed_forms_match_the_full_compilation() {
        for machine in [Machine::paper_single(6), Machine::paper_clustered(4, lat())] {
            let compiler = Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
            for lp in kernels::all_kernels(lat()) {
                let c = compiler.compile(&lp).unwrap();
                let s = c.summarize();
                assert_eq!(s.ii(), c.ii());
                assert_eq!(s.queues_required(), c.queues_required());
                assert_eq!(s.achieved_mii(), c.achieved_mii());
                assert_eq!(s.body_ops, c.transformed.num_ops());
                for n in [0u64, 1, 10, 100, 1000] {
                    assert_eq!(s.total_cycles(n), c.schedule.total_cycles(n), "{} N={n}", lp.name);
                    let formula = dynamic_ipc(c.transformed.num_ops(), &c.schedule, n);
                    assert_eq!(s.dynamic_ipc_at(n), formula, "{} N={n}", lp.name);
                }
                assert_eq!(s.fits_machine(&machine), c.fits_machine(&machine), "{}", lp.name);
            }
        }
    }

    #[test]
    fn summary_round_trips_through_serde_losslessly() {
        let machine = Machine::paper_clustered(4, lat());
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine));
        let lp = kernels::dot_product(lat(), 1000);
        let s = compiler.compile(&lp).unwrap().summarize();
        let v = s.serialize();
        let back = LoopSummary::deserialize(&v).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn sim_summary_mirrors_the_run_verdicts() {
        let machine = Machine::paper_single(6);
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
        let lp = kernels::dot_product(lat(), 100);
        let c = compiler.compile(&lp).unwrap();
        let run = vliw_sim::simulate(&c.transformed, &machine, &c.schedule, 50).unwrap();
        let s = SimSummary::from(&run);
        assert_eq!(s.is_clean(), run.is_clean());
        assert_eq!(s.schedule_is_sound(), run.schedule_is_sound());
        assert_eq!(s.total_violations(), run.total_violations());
        assert_eq!(s.measurement, run.measurement);
        let back = SimSummary::deserialize(&s.serialize()).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn verify_summary_mirrors_the_verification() {
        let machine = Machine::paper_single(6);
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
        let lp = kernels::dot_product(lat(), 100);
        let c = compiler.compile(&lp).unwrap();
        let v =
            vliw_verify::verify_with_allocation(&c.transformed, &machine, &c.schedule, &c.queues);
        let s = VerifySummary::from(&v);
        assert_eq!(s.is_clean(), v.is_clean());
        assert_eq!(s.schedule_is_sound(), v.schedule_is_sound());
        assert_eq!(s.total_violations(), v.total_violations());
        assert_eq!(s.max_private_peak, v.max_private_peak());
        assert_eq!(s.max_comm_peak, v.max_comm_peak());
        assert!(s.is_clean(), "paper machines verify clean");
        let back = VerifySummary::deserialize(&s.serialize()).expect("round trip");
        assert_eq!(back, s);
    }
}
