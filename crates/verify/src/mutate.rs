//! Fault injection for differential testing.
//!
//! The static verifier's claim — "I prove everything the simulator observes" —
//! is only worth trusting if it is *tested against* the simulator, not just
//! on clean schedules (where both trivially agree) but on broken ones.  This
//! module injects single, surgical faults into a compiled
//! (Ddg, Schedule, QueueAllocation) triple and names the lint code both the
//! verifier and the simulator must raise for it.  The repo-level differential
//! harness drives [`inject`] across the whole corpus and both schedulers and
//! asserts the agreement; the in-crate tests below pin it per fault class.

use vliw_ddg::{Ddg, DepKind};
use vliw_machine::Machine;
use vliw_qrf::QueueAllocation;
use vliw_sched::Schedule;

/// A single fault class the injector knows how to plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Move a consumer to its producer's issue cycle, violating the
    /// producer's latency.
    WrongCycle,
    /// Reassign an operation to a same-cluster unit of the wrong class.
    WrongFu,
    /// Drop the last operation's schedule entry entirely.
    DropOp,
    /// Under-declare one queue's depth by a single slot.
    ShrinkQueueDepth,
    /// Shrink a loop-carried flow dependence's iteration distance by one,
    /// making the schedule consume a value an iteration too early.
    CorruptDistance,
}

/// Every fault class, in a fixed order for exhaustive harness sweeps.
pub const ALL_FAULTS: [Fault; 5] = [
    Fault::WrongCycle,
    Fault::WrongFu,
    Fault::DropOp,
    Fault::ShrinkQueueDepth,
    Fault::CorruptDistance,
];

impl Fault {
    /// The lint code both the static verifier and the simulator must raise
    /// when this fault is present.
    pub fn expected_code(self) -> &'static str {
        match self {
            Fault::WrongCycle => "V001-DEP-DISTANCE",
            Fault::WrongFu => "V003-FU-CLASS",
            Fault::DropOp => "V005-WRONG-LENGTH",
            Fault::ShrinkQueueDepth => "V009-QUEUE-DEPTH",
            Fault::CorruptDistance => "V001-DEP-DISTANCE",
        }
    }

    /// Short human-readable name, for harness diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Fault::WrongCycle => "wrong-cycle",
            Fault::WrongFu => "wrong-fu",
            Fault::DropOp => "drop-op",
            Fault::ShrinkQueueDepth => "shrink-queue-depth",
            Fault::CorruptDistance => "corrupt-distance",
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A compiled loop the injector mutates in place: the graph, its schedule and
/// the queue allocation derived from them.  Start from a *clean* compilation
/// (both checkers agree it is clean), [`inject`] one fault, and both checkers
/// must flag [`Fault::expected_code`].
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The (possibly rewritten) dependence graph.
    pub ddg: Ddg,
    /// The schedule under test.
    pub schedule: Schedule,
    /// The machine-wide queue allocation for the schedule.
    pub allocation: QueueAllocation,
}

/// Plants `fault` into `mutant`, returning `false` when the loop offers no
/// injection site for this class (e.g. no loop-carried flow edge to corrupt).
/// A `true` return guarantees the fault is *armed*: the mutated triple
/// provably violates the invariant the fault class targets.
pub fn inject(fault: Fault, machine: &Machine, mutant: &mut Mutant) -> bool {
    let ii = mutant.schedule.ii;
    match fault {
        Fault::WrongCycle => {
            // A same-iteration flow edge with real latency: issuing the
            // consumer at the producer's cycle always misses the value.
            let Some(e) = mutant
                .ddg
                .edges()
                .find(|e| e.kind == DepKind::Flow && e.distance == 0 && e.latency >= 1)
            else {
                return false;
            };
            mutant.schedule.start[e.dst.index()] = mutant.schedule.start[e.src.index()];
            true
        }
        Fault::WrongFu => {
            // Reassign the first operation for which the same cluster offers
            // a unit of a different class, so the fault stays a pure class
            // violation (no routability side effects).
            for op in mutant.ddg.ops() {
                let current = mutant.schedule.fu[op.id.index()];
                if current.index() >= machine.num_fus() {
                    continue;
                }
                let cluster = machine.fu(current).cluster;
                let wrong =
                    machine.fus().iter().find(|fu| fu.cluster == cluster && fu.class != op.class());
                if let Some(fu) = wrong {
                    mutant.schedule.fu[op.id.index()] = fu.id;
                    return true;
                }
            }
            false
        }
        Fault::DropOp => {
            if mutant.schedule.start.is_empty() {
                return false;
            }
            mutant.schedule.start.pop();
            mutant.schedule.fu.pop();
            true
        }
        Fault::ShrinkQueueDepth => {
            // Any queue that actually holds a value: the allocator declares
            // exact MaxLive depths, so one slot less is always too few.
            let Some(q) = mutant.allocation.queue_depths.iter().position(|&d| d >= 1) else {
                return false;
            };
            mutant.allocation.queue_depths[q] -= 1;
            true
        }
        Fault::CorruptDistance => {
            // A carried flow edge with less than II of slack: removing one
            // iteration of distance removes II cycles of slack, so the
            // dependence constraint flips from satisfied to violated.
            let start = &mutant.schedule.start;
            let target = mutant.ddg.edges().find(|e| {
                if e.kind != DepKind::Flow || e.distance == 0 {
                    return false;
                }
                let lhs = i64::from(start[e.dst.index()]) + i64::from(ii) * i64::from(e.distance);
                let rhs = i64::from(start[e.src.index()]) + i64::from(e.latency);
                lhs >= rhs && lhs - rhs < i64::from(ii)
            });
            let Some(target) = target else {
                return false;
            };
            let (target_id, new_distance) = (target.id, target.distance - 1);
            let mut g = Ddg::with_capacity(mutant.ddg.num_ops());
            for op in mutant.ddg.ops() {
                g.add_op(op.kind);
            }
            for e in mutant.ddg.edges() {
                let d = if e.id == target_id { new_distance } else { e.distance };
                g.add_edge(e.src, e.dst, e.kind, e.latency, d);
            }
            mutant.ddg = g;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{dynamic_violations, verify_with_allocation};
    use vliw_ddg::{kernels, LatencyModel};
    use vliw_qrf::{allocate_queues, insert_copies, use_lifetimes};
    use vliw_sched::{modulo_schedule, ImsOptions};

    fn lat() -> LatencyModel {
        LatencyModel::default()
    }

    fn compile(lp: &vliw_ddg::Loop, machine: &Machine) -> Mutant {
        let rewritten = insert_copies(&lp.ddg, &lat()).ddg;
        let r = modulo_schedule(&rewritten, machine, ImsOptions::default()).unwrap();
        let lifetimes = use_lifetimes(&rewritten, &r.schedule);
        let allocation = allocate_queues(&lifetimes, r.schedule.ii);
        Mutant { ddg: rewritten, schedule: r.schedule, allocation }
    }

    #[test]
    fn every_fault_class_has_an_injection_site_somewhere_in_the_kernels() {
        let machine = Machine::single_cluster(6, 2, 32, lat());
        for fault in ALL_FAULTS {
            let planted = kernels::all_kernels(lat()).iter().any(|lp| {
                let mut m = compile(lp, &machine);
                inject(fault, &machine, &mut m)
            });
            assert!(planted, "no kernel offers a site for {fault}");
        }
    }

    #[test]
    fn both_checkers_flag_every_injected_fault_with_the_expected_code() {
        let machine = Machine::single_cluster(6, 2, 32, lat());
        for lp in kernels::all_kernels(lat()) {
            for fault in ALL_FAULTS {
                let mut m = compile(&lp, &machine);
                if !inject(fault, &machine, &mut m) {
                    continue;
                }
                let code = fault.expected_code();
                let v = verify_with_allocation(&m.ddg, &machine, &m.schedule, &m.allocation);
                assert!(
                    v.violations.iter().any(|v| v.code() == code),
                    "{}: static verifier missed {fault}: {}",
                    lp.name,
                    v.render_text()
                );
                let dynamic =
                    dynamic_violations(&m.ddg, &machine, &m.schedule, &m.allocation, 1000);
                assert!(
                    dynamic.iter().any(|v| v.code() == code),
                    "{}: simulator missed {fault}: {:?}",
                    lp.name,
                    dynamic
                );
            }
        }
    }

    #[test]
    fn unmutated_compilations_are_clean_on_both_sides() {
        let machine = Machine::single_cluster(6, 2, 32, lat());
        for lp in kernels::all_kernels(lat()) {
            let m = compile(&lp, &machine);
            let v = verify_with_allocation(&m.ddg, &machine, &m.schedule, &m.allocation);
            assert!(v.is_clean(), "{}: {}", lp.name, v.render_text());
            let dynamic = dynamic_violations(&m.ddg, &machine, &m.schedule, &m.allocation, 1000);
            assert!(dynamic.is_empty(), "{}: {:?}", lp.name, dynamic);
        }
    }

    #[test]
    fn injection_reports_missing_sites_honestly() {
        // dot_product has no loop-carried flow edge with sub-II slack after
        // scheduling on a wide machine... but some kernels do; what we pin
        // here is the *contract*: a false return leaves the mutant untouched.
        let machine = Machine::single_cluster(6, 2, 32, lat());
        let lp = kernels::wide_parallel(lat(), 100);
        let m0 = compile(&lp, &machine);
        for fault in ALL_FAULTS {
            let mut m = m0.clone();
            if !inject(fault, &machine, &mut m) {
                assert_eq!(m.schedule, m0.schedule, "{fault} mutated despite returning false");
                assert_eq!(
                    m.allocation.queue_depths, m0.allocation.queue_depths,
                    "{fault} mutated despite returning false"
                );
            }
        }
    }
}
