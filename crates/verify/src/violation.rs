//! The unified violation taxonomy shared by the static verifier and the
//! simulator.
//!
//! [`vliw_sched::ScheduleViolation`] (static validation) and
//! [`vliw_sim::SimViolation`] (dynamic observation) describe the same defects
//! from two vantage points.  [`Violation`] merges both vocabularies into one
//! enum with a **stable lint code** per defect class (`V001-DEP-DISTANCE`, …),
//! a [`Severity`], and whatever provenance each side can offer: the static
//! checker names ops, modulo slots and queues; the simulator adds the cycle and
//! iteration at which it caught the defect in the act.  `From` conversions lift
//! every legacy violation (and [`vliw_sim::SimSetupError`]) into the shared
//! form, so differential tests compare lint codes instead of matching two
//! unrelated enums structurally.

use std::fmt;

use serde::{de, Deserialize, Serialize, Value};
use vliw_ddg::OpId;
use vliw_machine::{ClusterId, FuId};
use vliw_sched::ScheduleViolation;
use vliw_sim::{SimRun, SimSetupError, SimViolation};

/// How bad a violation is.
///
/// Schedule defects are always [`Severity::Error`]: the generated code is
/// wrong.  The queue-overflow classes are [`Severity::Warning`]: the schedule
/// keeps every promise it made, but the loop's values exceed the machine's
/// storage — machine-sizing data (Fig. 7), not a compiler bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// The schedule or allocation is wrong.
    Error,
    /// The schedule is sound but does not fit the machine's storage.
    Warning,
}

/// A defect in a schedule or queue allocation, found statically or dynamically.
///
/// Optional `cycle` / `iteration` fields carry the simulator's provenance and
/// stay `None` when the defect was proved analytically (the static verifier
/// indicts the *schedule*, which has no cycles, only modulo slots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A dependence edge is not honoured:
    /// `start(dst) + II·distance < start(src) + latency`.
    DepDistance {
        /// Producer.
        src: OpId,
        /// Consumer.
        dst: OpId,
        /// Consumer iteration at which the simulator observed the miss.
        iteration: Option<u64>,
        /// Cycle at which the simulator observed the miss.
        cycle: Option<u64>,
        /// Cycle at which the operand becomes ready, when the simulator knows.
        ready_at: Option<u64>,
    },
    /// Two operations occupy one functional unit at the same time (the same
    /// modulo slot statically, the same cycle dynamically).
    FuConflict {
        /// Operation scheduled (or issued) first.
        first: OpId,
        /// Operation that collided with it.
        second: OpId,
        /// Double-booked unit.
        fu: FuId,
        /// Shared modulo slot (static provenance).
        slot: Option<u32>,
        /// Cycle of the collision (dynamic provenance).
        cycle: Option<u64>,
    },
    /// An operation is assigned to a functional unit of the wrong class.
    WrongFuClass {
        /// Operation.
        op: OpId,
        /// Assigned unit.
        fu: FuId,
    },
    /// An operation is assigned to a functional unit that does not exist.
    UnknownFu {
        /// Operation.
        op: OpId,
        /// Assigned unit.
        fu: FuId,
    },
    /// The schedule does not cover every operation of the graph.
    WrongLength {
        /// Number of operations in the graph.
        expected: usize,
        /// Number of operations in the schedule.
        actual: usize,
    },
    /// A cluster's private QRF needs more values than its queues can store.
    PrivateOverflow {
        /// Overflowing cluster.
        cluster: ClusterId,
        /// Peak (static) or first-overflowing (dynamic) occupancy in values.
        occupancy: usize,
        /// Capacity in values (`private_queues · queue_capacity`).
        capacity: usize,
        /// Cycle at which the simulator first saw the overflow.
        cycle: Option<u64>,
    },
    /// A ring link's communication queues need more values than they can store.
    CommOverflow {
        /// Producing cluster of the directed link.
        from: ClusterId,
        /// Consuming cluster of the directed link.
        to: ClusterId,
        /// Peak (static) or first-overflowing (dynamic) occupancy in values.
        occupancy: usize,
        /// Capacity in values (`queues_per_direction · queue_capacity`).
        capacity: usize,
        /// Cycle at which the simulator first saw the overflow.
        cycle: Option<u64>,
    },
    /// A value flows between clusters that are not adjacent on the ring, for
    /// which the machine has no communication path.
    NonAdjacent {
        /// Producing operation.
        src: OpId,
        /// Consuming operation.
        dst: OpId,
        /// Producer's cluster.
        from: ClusterId,
        /// Consumer's cluster.
        to: ClusterId,
    },
    /// A queue needs more depth than its allocation declared
    /// ([`vliw_qrf::QueueAllocation::queue_depths`] under-promises).
    QueueDepthMismatch {
        /// Queue id within the allocation.
        queue: usize,
        /// Depth the lifetimes actually require (static recount or observed
        /// dynamic peak).
        required: usize,
        /// Depth the allocation declared.
        declared: usize,
    },
    /// A modulo slot issues more copy operations in one cluster than the
    /// cluster has copy units — the copy bus cannot sustain the schedule.
    CopyBusOversubscribed {
        /// Oversubscribed cluster.
        cluster: ClusterId,
        /// Modulo slot of the oversubscription.
        slot: u32,
        /// Copy operations issuing in that slot.
        copies: usize,
        /// Copy units available.
        units: usize,
    },
    /// The schedule's initiation interval is zero; nothing can be checked.
    ZeroIi,
    /// The queue allocation does not describe this graph's value-carrying flow
    /// edges (wrong lifetime count or an index out of range).
    BadQueueMap {
        /// Value-carrying flow edges in the graph.
        expected_edges: usize,
        /// Lifetimes covered by the allocation.
        actual_edges: usize,
    },
}

impl Violation {
    /// The stable lint code of this violation class — the vocabulary the
    /// static verifier, the simulator and the differential tests share.
    pub fn code(&self) -> &'static str {
        match self {
            Violation::DepDistance { .. } => "V001-DEP-DISTANCE",
            Violation::FuConflict { .. } => "V002-FU-CONFLICT",
            Violation::WrongFuClass { .. } => "V003-FU-CLASS",
            Violation::UnknownFu { .. } => "V004-FU-UNKNOWN",
            Violation::WrongLength { .. } => "V005-WRONG-LENGTH",
            Violation::PrivateOverflow { .. } => "V006-PRIVATE-OVERFLOW",
            Violation::CommOverflow { .. } => "V007-COMM-OVERFLOW",
            Violation::NonAdjacent { .. } => "V008-NON-ADJACENT",
            Violation::QueueDepthMismatch { .. } => "V009-QUEUE-DEPTH",
            Violation::CopyBusOversubscribed { .. } => "V010-COPY-BUS",
            Violation::ZeroIi => "V011-ZERO-II",
            Violation::BadQueueMap { .. } => "V012-QUEUE-MAP",
        }
    }

    /// Severity of this violation class (see [`Severity`]).
    pub fn severity(&self) -> Severity {
        match self {
            Violation::PrivateOverflow { .. } | Violation::CommOverflow { .. } => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// True if the violation indicts the **schedule** (or the allocation's
    /// structure) rather than the machine's storage sizing — the unified
    /// spelling of [`SimViolation::is_schedule_fault`].  The overflow and
    /// queue-depth classes are **capacity faults**: the schedule keeps its
    /// promises but the values outgrow the storage budget.
    pub fn is_schedule_fault(&self) -> bool {
        !matches!(
            self,
            Violation::PrivateOverflow { .. }
                | Violation::CommOverflow { .. }
                | Violation::QueueDepthMismatch { .. }
        )
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            Violation::DepDistance { src, dst, iteration, cycle, ready_at } => {
                match (iteration, cycle) {
                    (Some(k), Some(c)) => match ready_at {
                        Some(ready) => write!(
                            f,
                            "{dst} (iteration {k}) issued at cycle {c} but its operand \
                             from {src} is only ready at cycle {ready}"
                        ),
                        None => write!(
                            f,
                            "{dst} (iteration {k}) issued at cycle {c} before its \
                             producer {src} issued at all"
                        ),
                    },
                    _ => write!(f, "dependence {src} -> {dst} violated"),
                }
            }
            Violation::FuConflict { first, second, fu, slot, cycle } => match (slot, cycle) {
                (_, Some(c)) => {
                    write!(f, "{first} and {second} both issued on {fu} at cycle {c}")
                }
                (Some(s), None) => {
                    write!(f, "operations {first} and {second} both use {fu} at modulo slot {s}")
                }
                (None, None) => write!(f, "operations {first} and {second} both use {fu}"),
            },
            Violation::WrongFuClass { op, fu } => {
                write!(f, "operation {op} assigned to {fu} of the wrong class")
            }
            Violation::UnknownFu { op, fu } => {
                write!(f, "operation {op} assigned to nonexistent {fu}")
            }
            Violation::WrongLength { expected, actual } => {
                write!(f, "schedule covers {actual} operations, graph has {expected}")
            }
            Violation::PrivateOverflow { cluster, occupancy, capacity, cycle } => match cycle {
                Some(c) => write!(
                    f,
                    "{cluster} QRF held {occupancy} values at cycle {c}, capacity is {capacity}"
                ),
                None => write!(
                    f,
                    "{cluster} QRF needs {occupancy} values at steady state, \
                     capacity is {capacity}"
                ),
            },
            Violation::CommOverflow { from, to, occupancy, capacity, cycle } => match cycle {
                Some(c) => write!(
                    f,
                    "ring link {from} -> {to} held {occupancy} values at cycle {c}, \
                     capacity is {capacity}"
                ),
                None => write!(
                    f,
                    "ring link {from} -> {to} needs {occupancy} values at steady state, \
                     capacity is {capacity}"
                ),
            },
            Violation::NonAdjacent { src, dst, from, to } => {
                write!(f, "value {src} -> {dst} flows between non-adjacent clusters {from} -> {to}")
            }
            Violation::QueueDepthMismatch { queue, required, declared } => {
                write!(
                    f,
                    "queue {queue} needs depth {required} but the allocation \
                     declared {declared}"
                )
            }
            Violation::CopyBusOversubscribed { cluster, slot, copies, units } => {
                write!(
                    f,
                    "{cluster} issues {copies} copy operations at modulo slot {slot} \
                     but has only {units} copy units"
                )
            }
            Violation::ZeroIi => write!(f, "cannot verify a schedule with II = 0"),
            Violation::BadQueueMap { expected_edges, actual_edges } => {
                write!(
                    f,
                    "allocation covers {actual_edges} lifetimes, graph has \
                     {expected_edges} value-carrying flow edges"
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

impl From<ScheduleViolation> for Violation {
    fn from(v: ScheduleViolation) -> Self {
        match v {
            ScheduleViolation::WrongLength { expected, actual } => {
                Violation::WrongLength { expected, actual }
            }
            ScheduleViolation::DependenceViolated { src, dst } => {
                Violation::DepDistance { src, dst, iteration: None, cycle: None, ready_at: None }
            }
            ScheduleViolation::ResourceConflict { a, b, fu, slot } => {
                Violation::FuConflict { first: a, second: b, fu, slot: Some(slot), cycle: None }
            }
            ScheduleViolation::WrongFuClass { op, fu } => Violation::WrongFuClass { op, fu },
            ScheduleViolation::UnknownFu { op, fu } => Violation::UnknownFu { op, fu },
        }
    }
}

impl From<SimViolation> for Violation {
    fn from(v: SimViolation) -> Self {
        match v {
            SimViolation::OperandNotReady { src, dst, iteration, cycle, ready_at } => {
                Violation::DepDistance {
                    src,
                    dst,
                    iteration: Some(iteration),
                    cycle: Some(cycle),
                    ready_at,
                }
            }
            SimViolation::FuConflict { fu, cycle, first, second } => {
                Violation::FuConflict { first, second, fu, slot: None, cycle: Some(cycle) }
            }
            SimViolation::WrongFuClass { op, fu } => Violation::WrongFuClass { op, fu },
            SimViolation::PrivateQueueOverflow { cluster, cycle, occupancy, capacity } => {
                Violation::PrivateOverflow { cluster, occupancy, capacity, cycle: Some(cycle) }
            }
            SimViolation::CommQueueOverflow { from, to, cycle, occupancy, capacity } => {
                Violation::CommOverflow { from, to, occupancy, capacity, cycle: Some(cycle) }
            }
            SimViolation::NonAdjacentCommunication { src, dst, from, to } => {
                Violation::NonAdjacent { src, dst, from, to }
            }
        }
    }
}

impl From<SimSetupError> for Violation {
    fn from(e: SimSetupError) -> Self {
        match e {
            SimSetupError::WrongLength { expected, actual } => {
                Violation::WrongLength { expected, actual }
            }
            SimSetupError::ZeroIi => Violation::ZeroIi,
            SimSetupError::UnknownFu { op, fu } => Violation::UnknownFu { op, fu },
            SimSetupError::BadQueueMap { expected_edges, actual_edges } => {
                Violation::BadQueueMap { expected_edges, actual_edges }
            }
        }
    }
}

/// Lifts a dynamic run's findings into the unified taxonomy.
///
/// The recorded [`SimViolation`]s convert directly; when `declared_depths` is
/// supplied (the allocator's [`vliw_qrf::QueueAllocation::queue_depths`] for
/// the [`vliw_sim::QueueMap`] the run was given), any physical queue whose
/// observed peak exceeds its declared depth additionally reports
/// `V009-QUEUE-DEPTH` — the dynamic counterpart of the static verifier's
/// per-queue cross-check.
pub fn violations_of_run(run: &SimRun, declared_depths: Option<&[usize]>) -> Vec<Violation> {
    let mut out: Vec<Violation> = run.violations.iter().cloned().map(Violation::from).collect();
    if let Some(depths) = declared_depths {
        for (queue, (&peak, &declared)) in
            run.measurement.peak_queue_occupancy.iter().zip(depths).enumerate()
        {
            if peak > declared {
                out.push(Violation::QueueDepthMismatch { queue, required: peak, declared });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Wire form.  The vendored serde derive only covers named-field structs and
// C-like enums, so the tagged union is serialized by hand:
// `{"code": "V001-DEP-DISTANCE", "severity": "Error", ...fields}`.  The lint
// code doubles as the wire tag; `severity` is informational (recomputed from
// the variant on the way back in).
// ---------------------------------------------------------------------------

fn entry(name: &str, v: Value) -> (String, Value) {
    (name.to_string(), v)
}

fn uint(v: u64) -> Value {
    Value::UInt(v)
}

fn opt_u64(v: &Option<u64>) -> Value {
    match v {
        Some(x) => Value::UInt(*x),
        None => Value::Null,
    }
}

impl Serialize for Violation {
    fn serialize(&self) -> Value {
        let mut entries = vec![
            entry("code", Value::String(self.code().to_string())),
            entry("severity", self.severity().serialize()),
        ];
        match self {
            Violation::DepDistance { src, dst, iteration, cycle, ready_at } => {
                entries.push(entry("src", uint(u64::from(src.0))));
                entries.push(entry("dst", uint(u64::from(dst.0))));
                entries.push(entry("iteration", opt_u64(iteration)));
                entries.push(entry("cycle", opt_u64(cycle)));
                entries.push(entry("ready_at", opt_u64(ready_at)));
            }
            Violation::FuConflict { first, second, fu, slot, cycle } => {
                entries.push(entry("first", uint(u64::from(first.0))));
                entries.push(entry("second", uint(u64::from(second.0))));
                entries.push(entry("fu", uint(u64::from(fu.0))));
                entries.push(entry("slot", opt_u64(&slot.map(u64::from))));
                entries.push(entry("cycle", opt_u64(cycle)));
            }
            Violation::WrongFuClass { op, fu } | Violation::UnknownFu { op, fu } => {
                entries.push(entry("op", uint(u64::from(op.0))));
                entries.push(entry("fu", uint(u64::from(fu.0))));
            }
            Violation::WrongLength { expected, actual } => {
                entries.push(entry("expected", uint(*expected as u64)));
                entries.push(entry("actual", uint(*actual as u64)));
            }
            Violation::PrivateOverflow { cluster, occupancy, capacity, cycle } => {
                entries.push(entry("cluster", uint(u64::from(cluster.0))));
                entries.push(entry("occupancy", uint(*occupancy as u64)));
                entries.push(entry("capacity", uint(*capacity as u64)));
                entries.push(entry("cycle", opt_u64(cycle)));
            }
            Violation::CommOverflow { from, to, occupancy, capacity, cycle } => {
                entries.push(entry("from", uint(u64::from(from.0))));
                entries.push(entry("to", uint(u64::from(to.0))));
                entries.push(entry("occupancy", uint(*occupancy as u64)));
                entries.push(entry("capacity", uint(*capacity as u64)));
                entries.push(entry("cycle", opt_u64(cycle)));
            }
            Violation::NonAdjacent { src, dst, from, to } => {
                entries.push(entry("src", uint(u64::from(src.0))));
                entries.push(entry("dst", uint(u64::from(dst.0))));
                entries.push(entry("from", uint(u64::from(from.0))));
                entries.push(entry("to", uint(u64::from(to.0))));
            }
            Violation::QueueDepthMismatch { queue, required, declared } => {
                entries.push(entry("queue", uint(*queue as u64)));
                entries.push(entry("required", uint(*required as u64)));
                entries.push(entry("declared", uint(*declared as u64)));
            }
            Violation::CopyBusOversubscribed { cluster, slot, copies, units } => {
                entries.push(entry("cluster", uint(u64::from(cluster.0))));
                entries.push(entry("slot", uint(u64::from(*slot))));
                entries.push(entry("copies", uint(*copies as u64)));
                entries.push(entry("units", uint(*units as u64)));
            }
            Violation::ZeroIi => {}
            Violation::BadQueueMap { expected_edges, actual_edges } => {
                entries.push(entry("expected_edges", uint(*expected_edges as u64)));
                entries.push(entry("actual_edges", uint(*actual_edges as u64)));
            }
        }
        Value::Object(entries)
    }
}

fn op_field(entries: &[(String, Value)], name: &str) -> Result<OpId, de::Error> {
    de::field::<u64>(entries, name).map(|x| OpId(x as u32))
}

fn fu_field(entries: &[(String, Value)], name: &str) -> Result<FuId, de::Error> {
    de::field::<u64>(entries, name).map(|x| FuId(x as u32))
}

fn cluster_field(entries: &[(String, Value)], name: &str) -> Result<ClusterId, de::Error> {
    de::field::<u64>(entries, name).map(|x| ClusterId(x as u32))
}

fn usize_field(entries: &[(String, Value)], name: &str) -> Result<usize, de::Error> {
    de::field::<u64>(entries, name).map(|x| x as usize)
}

impl Deserialize for Violation {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        let entries = v.as_object().ok_or_else(|| de::Error::unexpected("object", v))?;
        let code: String = de::field(entries, "code")?;
        match code.as_str() {
            "V001-DEP-DISTANCE" => Ok(Violation::DepDistance {
                src: op_field(entries, "src")?,
                dst: op_field(entries, "dst")?,
                iteration: de::field(entries, "iteration")?,
                cycle: de::field(entries, "cycle")?,
                ready_at: de::field(entries, "ready_at")?,
            }),
            "V002-FU-CONFLICT" => Ok(Violation::FuConflict {
                first: op_field(entries, "first")?,
                second: op_field(entries, "second")?,
                fu: fu_field(entries, "fu")?,
                slot: de::field::<Option<u64>>(entries, "slot")?.map(|x| x as u32),
                cycle: de::field(entries, "cycle")?,
            }),
            "V003-FU-CLASS" => Ok(Violation::WrongFuClass {
                op: op_field(entries, "op")?,
                fu: fu_field(entries, "fu")?,
            }),
            "V004-FU-UNKNOWN" => Ok(Violation::UnknownFu {
                op: op_field(entries, "op")?,
                fu: fu_field(entries, "fu")?,
            }),
            "V005-WRONG-LENGTH" => Ok(Violation::WrongLength {
                expected: usize_field(entries, "expected")?,
                actual: usize_field(entries, "actual")?,
            }),
            "V006-PRIVATE-OVERFLOW" => Ok(Violation::PrivateOverflow {
                cluster: cluster_field(entries, "cluster")?,
                occupancy: usize_field(entries, "occupancy")?,
                capacity: usize_field(entries, "capacity")?,
                cycle: de::field(entries, "cycle")?,
            }),
            "V007-COMM-OVERFLOW" => Ok(Violation::CommOverflow {
                from: cluster_field(entries, "from")?,
                to: cluster_field(entries, "to")?,
                occupancy: usize_field(entries, "occupancy")?,
                capacity: usize_field(entries, "capacity")?,
                cycle: de::field(entries, "cycle")?,
            }),
            "V008-NON-ADJACENT" => Ok(Violation::NonAdjacent {
                src: op_field(entries, "src")?,
                dst: op_field(entries, "dst")?,
                from: cluster_field(entries, "from")?,
                to: cluster_field(entries, "to")?,
            }),
            "V009-QUEUE-DEPTH" => Ok(Violation::QueueDepthMismatch {
                queue: usize_field(entries, "queue")?,
                required: usize_field(entries, "required")?,
                declared: usize_field(entries, "declared")?,
            }),
            "V010-COPY-BUS" => Ok(Violation::CopyBusOversubscribed {
                cluster: cluster_field(entries, "cluster")?,
                slot: de::field::<u64>(entries, "slot")? as u32,
                copies: usize_field(entries, "copies")?,
                units: usize_field(entries, "units")?,
            }),
            "V011-ZERO-II" => Ok(Violation::ZeroIi),
            "V012-QUEUE-MAP" => Ok(Violation::BadQueueMap {
                expected_edges: usize_field(entries, "expected_edges")?,
                actual_edges: usize_field(entries, "actual_edges")?,
            }),
            other => Err(de::Error::custom(format!("unknown lint code `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_violation() -> Vec<Violation> {
        vec![
            Violation::DepDistance {
                src: OpId(0),
                dst: OpId(1),
                iteration: Some(3),
                cycle: Some(7),
                ready_at: Some(9),
            },
            Violation::DepDistance {
                src: OpId(0),
                dst: OpId(1),
                iteration: None,
                cycle: None,
                ready_at: None,
            },
            Violation::FuConflict {
                first: OpId(0),
                second: OpId(1),
                fu: FuId(2),
                slot: Some(3),
                cycle: None,
            },
            Violation::FuConflict {
                first: OpId(0),
                second: OpId(1),
                fu: FuId(2),
                slot: None,
                cycle: Some(4),
            },
            Violation::WrongFuClass { op: OpId(5), fu: FuId(0) },
            Violation::UnknownFu { op: OpId(5), fu: FuId(95) },
            Violation::WrongLength { expected: 4, actual: 3 },
            Violation::PrivateOverflow {
                cluster: ClusterId(1),
                occupancy: 65,
                capacity: 64,
                cycle: None,
            },
            Violation::CommOverflow {
                from: ClusterId(0),
                to: ClusterId(1),
                occupancy: 65,
                capacity: 64,
                cycle: Some(2),
            },
            Violation::NonAdjacent {
                src: OpId(0),
                dst: OpId(1),
                from: ClusterId(0),
                to: ClusterId(2),
            },
            Violation::QueueDepthMismatch { queue: 3, required: 5, declared: 4 },
            Violation::CopyBusOversubscribed {
                cluster: ClusterId(0),
                slot: 2,
                copies: 3,
                units: 1,
            },
            Violation::ZeroIi,
            Violation::BadQueueMap { expected_edges: 7, actual_edges: 5 },
        ]
    }

    #[test]
    fn codes_are_stable_and_unique_per_class() {
        let mut codes: Vec<&str> = every_violation().iter().map(|v| v.code()).collect();
        codes.dedup();
        // The two DepDistance and two FuConflict spellings share their codes.
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 12, "12 distinct lint codes");
        assert!(unique.iter().all(|c| c.starts_with('V')));
    }

    #[test]
    fn display_leads_with_the_code_and_names_the_actors() {
        let v = Violation::DepDistance {
            src: OpId(0),
            dst: OpId(1),
            iteration: None,
            cycle: None,
            ready_at: None,
        };
        let s = v.to_string();
        assert!(s.starts_with("[V001-DEP-DISTANCE]"), "{s}");
        assert!(s.contains("op0") && s.contains("op1"), "{s}");
        for v in every_violation() {
            let s = v.to_string();
            assert!(s.starts_with(&format!("[{}]", v.code())), "{s}");
        }
    }

    #[test]
    fn schedule_violations_convert_with_their_codes() {
        let cases: Vec<(ScheduleViolation, &str)> = vec![
            (ScheduleViolation::WrongLength { expected: 2, actual: 1 }, "V005-WRONG-LENGTH"),
            (
                ScheduleViolation::DependenceViolated { src: OpId(0), dst: OpId(1) },
                "V001-DEP-DISTANCE",
            ),
            (
                ScheduleViolation::ResourceConflict {
                    a: OpId(0),
                    b: OpId(1),
                    fu: FuId(2),
                    slot: 3,
                },
                "V002-FU-CONFLICT",
            ),
            (ScheduleViolation::WrongFuClass { op: OpId(0), fu: FuId(1) }, "V003-FU-CLASS"),
            (ScheduleViolation::UnknownFu { op: OpId(0), fu: FuId(9) }, "V004-FU-UNKNOWN"),
        ];
        for (v, code) in cases {
            assert_eq!(Violation::from(v).code(), code);
        }
    }

    #[test]
    fn sim_violations_convert_with_their_codes_and_provenance() {
        let v = Violation::from(SimViolation::OperandNotReady {
            src: OpId(0),
            dst: OpId(1),
            iteration: 3,
            cycle: 7,
            ready_at: Some(9),
        });
        assert_eq!(v.code(), "V001-DEP-DISTANCE");
        assert!(matches!(v, Violation::DepDistance { cycle: Some(7), .. }));
        let v = Violation::from(SimViolation::FuConflict {
            fu: FuId(2),
            cycle: 4,
            first: OpId(0),
            second: OpId(1),
        });
        assert_eq!(v.code(), "V002-FU-CONFLICT");
        let v = Violation::from(SimViolation::PrivateQueueOverflow {
            cluster: ClusterId(1),
            cycle: 2,
            occupancy: 65,
            capacity: 64,
        });
        assert_eq!(v.code(), "V006-PRIVATE-OVERFLOW");
        assert_eq!(v.severity(), Severity::Warning);
        assert!(!v.is_schedule_fault());
        let v = Violation::from(SimViolation::NonAdjacentCommunication {
            src: OpId(0),
            dst: OpId(1),
            from: ClusterId(0),
            to: ClusterId(2),
        });
        assert_eq!(v.code(), "V008-NON-ADJACENT");
        assert!(v.is_schedule_fault());
    }

    #[test]
    fn setup_errors_convert_with_their_codes() {
        assert_eq!(
            Violation::from(SimSetupError::WrongLength { expected: 2, actual: 1 }).code(),
            "V005-WRONG-LENGTH"
        );
        assert_eq!(Violation::from(SimSetupError::ZeroIi).code(), "V011-ZERO-II");
        assert_eq!(
            Violation::from(SimSetupError::UnknownFu { op: OpId(0), fu: FuId(9) }).code(),
            "V004-FU-UNKNOWN"
        );
        assert_eq!(
            Violation::from(SimSetupError::BadQueueMap { expected_edges: 1, actual_edges: 0 })
                .code(),
            "V012-QUEUE-MAP"
        );
    }

    #[test]
    fn violations_round_trip_through_the_wire_form() {
        for v in every_violation() {
            let json = serde_json::to_string(&v).unwrap();
            let back: Violation = serde_json::from_str(&json).unwrap();
            assert_eq!(back, v, "{json}");
            assert!(json.contains(&format!("\"code\":\"{}\"", v.code())), "{json}");
        }
    }

    #[test]
    fn unknown_codes_are_rejected() {
        assert!(serde_json::from_str::<Violation>("{\"code\": \"V099-MADE-UP\"}").is_err());
        assert!(serde_json::from_str::<Violation>("{\"severity\": \"Error\"}").is_err());
        assert!(serde_json::from_str::<Violation>("[3]").is_err());
    }

    #[test]
    fn severity_splits_schedule_from_capacity() {
        for v in every_violation() {
            if matches!(v, Violation::QueueDepthMismatch { .. }) {
                // Allocation under-promising is an accounting error even though
                // it counts as a capacity fault.
                assert_eq!(v.severity(), Severity::Error);
                assert!(!v.is_schedule_fault());
            } else {
                assert_eq!(v.severity() == Severity::Warning, !v.is_schedule_fault());
            }
        }
    }
}
