//! Static schedule/allocation verification for the clustered-VLIW stack.
//!
//! Every correctness property the cycle-accurate simulator (`vliw-sim`)
//! observes dynamically is *statically decidable* from the schedule and its
//! initiation interval: dependence satisfaction is a per-edge inequality,
//! resource legality is a modulo reservation table, and steady-state queue
//! occupancy is the MaxLive watermark of per-use lifetimes.  This crate
//! proves all of them in `O(ops + edges)` — no iteration count, no event
//! loop — which makes verification of a whole corpus or a ≥100k-point design
//! sweep cheap enough to run in CI.
//!
//! Three pieces:
//!
//! * [`Violation`] — the unified diagnostic taxonomy.  The schedule-time
//!   checks of `vliw_sched::ScheduleViolation` and the run-time observations
//!   of `vliw_sim::SimViolation` both convert into it, so static and dynamic
//!   checkers speak one language of stable lint codes (`V001-DEP-DISTANCE`,
//!   `V009-QUEUE-DEPTH`, ...) with severity and provenance, rendered as text
//!   (`[CODE] message`) or JSON.
//! * [`verify`] / [`verify_with_allocation`] — the flow-sensitive static
//!   pass, returning a [`Verification`] that mirrors a `SimRun`: fault
//!   counters, per-pool and per-queue peaks, copy-bus utilisation.
//! * [`inject`] — the fault-injection framework ([`Fault`], [`Mutant`]) the
//!   differential harness uses to prove the verifier and the simulator agree
//!   not only on clean schedules but on every class of broken one, with
//!   matching lint codes.
//!
//! The decision rule for callers: reach for the verifier when you need a
//! *verdict* (is this schedule sound? does it fit this machine?), and for the
//! simulator when you need an *execution* (issue traces, prologue/epilogue
//! behaviour, observed peaks at a finite trip count).

pub mod check;
pub mod mutate;
pub mod violation;

pub use check::{
    dynamic_violations, link_table, queue_map_of, verify, verify_with_allocation, Verification,
};
pub use mutate::{inject, Fault, Mutant, ALL_FAULTS};
pub use violation::{violations_of_run, Severity, Violation};
