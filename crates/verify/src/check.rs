//! The flow-sensitive static verifier.
//!
//! [`verify`] proves, from (Ddg, Machine, Schedule) arithmetic alone, the full
//! invariant set the simulator checks by executing `O(cycles · N)` steps:
//!
//! * **dependence distances** — `start(dst) + II·distance ≥ start(src) +
//!   latency` per edge (i64, the same modulo-window arithmetic
//!   `vliw_sched::Schedule::validate` uses);
//! * **FU legality** — every operation on an existing unit of its class, no
//!   two operations sharing an (FU, modulo-slot) MRT cell;
//! * **ring adjacency** — every value-carrying flow edge routes between
//!   communicating clusters;
//! * **steady-state storage** — per-pool peak occupancy via difference-array
//!   lifetime counting (`vliw_qrf::max_live`), partitioned into each cluster's
//!   private QRF and each directed ring link exactly as the simulator's
//!   domain model does, then compared against the machine's capacity budgets;
//! * **per-queue depths** — [`verify_with_allocation`] recounts every queue of
//!   a [`QueueAllocation`] and flags declared depths the lifetimes exceed;
//! * **copy-bus bounds** — copy operations per (cluster, modulo slot) against
//!   the cluster's copy units, plus the steady-state bus utilisation
//!   `copies / (copy_units · II)`.
//!
//! The equivalence with the simulator is exact at steady state: the sim
//! enqueues each value use at its producer's issue cycle and dequeues it at
//! the consumer's read (dequeues before enqueues within a cycle), which is
//! precisely the half-open per-use lifetime `[start(src), start(dst) +
//! II·distance)` that `max_live` counts — the `tests` below and the
//! repo-level differential harness pin that agreement corpus-wide.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use vliw_ddg::{Ddg, OpClass};
use vliw_machine::{ClusterId, Machine};
use vliw_qrf::{max_live_indexed, Lifetime, QueueAllocation};
use vliw_sched::Schedule;

use crate::violation::Violation;

/// The directed ring links of `machine`, in the simulator's deterministic
/// order: producing cluster ascending, successor neighbour before predecessor
/// neighbour.  [`Verification::peak_comm_occupancy`] is indexed by this table,
/// exactly like `SimMeasurement::peak_comm_occupancy`.
pub fn link_table(machine: &Machine) -> Vec<(ClusterId, ClusterId)> {
    let n = machine.num_clusters();
    if n <= 1 {
        return Vec::new();
    }
    let mut links = Vec::with_capacity(n * 2);
    for c in 0..n {
        let next = (c + 1) % n;
        let prev = (c + n - 1) % n;
        links.push((ClusterId(c as u32), ClusterId(next as u32)));
        if prev != next {
            links.push((ClusterId(c as u32), ClusterId(prev as u32)));
        }
    }
    links
}

/// What the static verifier proved about one schedule.
///
/// Mirrors [`vliw_sim::SimRun`]: the same fault counters, the same peak tables
/// (here the *steady-state* watermark instead of an execution's observation),
/// so callers can swap one for the other.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verification {
    /// Every violation found, in deterministic check order (structural,
    /// dependence, FU, adjacency, copy bus, storage, queue depths).  The
    /// static checker reports each defect once — per edge, op, pool or queue —
    /// so the list is never iteration-amplified and needs no recording cap.
    pub violations: Vec<Violation>,
    /// Violations indicting the schedule or allocation structure
    /// ([`Violation::is_schedule_fault`]).
    pub schedule_faults: u64,
    /// Capacity violations: pool overflows and under-declared queue depths.
    pub capacity_faults: u64,
    /// Steady-state peak occupancy of each cluster's private QRF, indexed by
    /// cluster.
    pub peak_private_occupancy: Vec<usize>,
    /// Steady-state peak occupancy of each directed ring link, indexed by
    /// [`link_table`] order (empty for single-cluster machines).
    pub peak_comm_occupancy: Vec<usize>,
    /// Static per-queue depth recount, indexed like the allocation's queues
    /// (empty when no allocation was supplied).
    pub peak_queue_occupancy: Vec<usize>,
    /// Steady-state copy-bus utilisation: `copy_ops / (copy_units · II)`
    /// (0 when the machine has no copy units).
    pub copy_bus_utilisation: f64,
}

impl Verification {
    fn empty() -> Self {
        Verification {
            violations: Vec::new(),
            schedule_faults: 0,
            capacity_faults: 0,
            peak_private_occupancy: Vec::new(),
            peak_comm_occupancy: Vec::new(),
            peak_queue_occupancy: Vec::new(),
            copy_bus_utilisation: 0.0,
        }
    }

    fn record(&mut self, v: Violation) {
        if v.is_schedule_fault() {
            self.schedule_faults += 1;
        } else {
            self.capacity_faults += 1;
        }
        self.violations.push(v);
    }

    /// Total violations of both classes.
    pub fn total_violations(&self) -> u64 {
        self.schedule_faults + self.capacity_faults
    }

    /// True if the schedule proves out without a single violation.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// True if the schedule keeps every promise it made (capacity faults, if
    /// any, are machine-sizing data) — the static spelling of
    /// [`vliw_sim::SimRun::schedule_is_sound`].
    pub fn schedule_is_sound(&self) -> bool {
        self.schedule_faults == 0
    }

    /// The largest private-QRF steady-state peak over all clusters.
    pub fn max_private_peak(&self) -> usize {
        self.peak_private_occupancy.iter().copied().max().unwrap_or(0)
    }

    /// The largest communication-queue steady-state peak over all links.
    pub fn max_comm_peak(&self) -> usize {
        self.peak_comm_occupancy.iter().copied().max().unwrap_or(0)
    }

    /// Renders the verdict as human-readable text: one line per violation
    /// (lint code first), or a one-line all-clear.
    pub fn render_text(&self) -> String {
        if self.is_clean() {
            return "clean: every invariant proved statically\n".to_string();
        }
        let mut out = format!(
            "{} violations ({} schedule, {} capacity)\n",
            self.total_violations(),
            self.schedule_faults,
            self.capacity_faults
        );
        for v in &self.violations {
            out.push_str(&format!("{v}\n"));
        }
        out
    }
}

/// Translates a [`QueueAllocation`] into the simulator's per-edge
/// [`vliw_sim::QueueMap`], so a dynamic run can be asked to track exactly the
/// queues the allocator (and [`verify_with_allocation`]) reason about.
pub fn queue_map_of(allocation: &QueueAllocation) -> vliw_sim::QueueMap {
    let total = allocation.queues().map(<[u32]>::len).sum::<usize>();
    let mut queue_of = vec![None; total];
    for (q, members) in allocation.queues().enumerate() {
        for &m in members {
            if let Some(slot) = queue_of.get_mut(m as usize) {
                *slot = Some(q as u32);
            }
        }
    }
    vliw_sim::QueueMap { queue_of, num_queues: allocation.num_queues() }
}

/// The dynamic counterpart of [`verify_with_allocation`]: simulates
/// `trip_count` iterations with per-queue tracking and returns everything the
/// run flagged as unified [`Violation`]s — recorded violations, per-queue
/// peaks exceeding the allocation's declared depths, and setup refusals.
///
/// This is the "other side" the differential harness compares the static
/// verdict against.
pub fn dynamic_violations(
    ddg: &Ddg,
    machine: &Machine,
    schedule: &Schedule,
    allocation: &QueueAllocation,
    trip_count: u64,
) -> Vec<Violation> {
    let map = queue_map_of(allocation);
    match vliw_sim::simulate_with_queue_map(ddg, machine, schedule, trip_count, &map) {
        Ok(run) => crate::violation::violations_of_run(&run, Some(&allocation.queue_depths)),
        Err(e) => vec![Violation::from(e)],
    }
}

/// Statically verifies `schedule` against `ddg` on `machine`.
///
/// Checks everything except the per-queue depth cross-check (no allocation to
/// check against); see [`verify_with_allocation`].
pub fn verify(ddg: &Ddg, machine: &Machine, schedule: &Schedule) -> Verification {
    verify_inner(ddg, machine, schedule, None)
}

/// [`verify`] plus the allocation cross-check: recounts the steady-state depth
/// of every queue of `allocation` from the lifetimes it binned and flags
/// queues whose declared [`QueueAllocation::queue_depths`] entry the recount
/// exceeds.
pub fn verify_with_allocation(
    ddg: &Ddg,
    machine: &Machine,
    schedule: &Schedule,
    allocation: &QueueAllocation,
) -> Verification {
    verify_inner(ddg, machine, schedule, Some(allocation))
}

/// `vliw_qrf::use_lifetimes`, hardened for broken schedules: an inverted
/// lifetime (consumer scheduled before its producer — only possible under a
/// dependence violation, which the caller has already reported) is clamped to
/// zero length at the producer, so it occupies no storage and the `Lifetime`
/// invariant `end ≥ start` holds.
fn clamped_use_lifetimes(ddg: &Ddg, schedule: &Schedule) -> Vec<Lifetime> {
    let ii = u64::from(schedule.ii);
    let mut out = Vec::new();
    for e in ddg.edges() {
        if !e.kind.carries_value() {
            continue;
        }
        let start = u64::from(schedule.start[e.src.index()]);
        let end = u64::from(schedule.start[e.dst.index()]) + ii * u64::from(e.distance);
        out.push(Lifetime { producer: e.src, consumer: e.dst, start, end: end.max(start) });
    }
    out
}

fn verify_inner(
    ddg: &Ddg,
    machine: &Machine,
    schedule: &Schedule,
    allocation: Option<&QueueAllocation>,
) -> Verification {
    let _span = vliw_obs::span!("verify", ddg.num_ops());
    let mut out = Verification::empty();

    // Structural gates: nothing else is well-defined if these fail, so bail
    // out with the single structural verdict (the simulator refuses these
    // inputs the same way, as a `SimSetupError`).
    let n = ddg.num_ops();
    if schedule.start.len() != n {
        out.record(Violation::WrongLength { expected: n, actual: schedule.start.len() });
        return out;
    }
    if schedule.ii == 0 {
        out.record(Violation::ZeroIi);
        return out;
    }
    let ii = schedule.ii;

    // Dependence distances, per edge in id order: the modulo constraint
    // `start(dst) + II·distance ≥ start(src) + latency` over i64 (a u32
    // start plus u32·u32 products stays far inside the i64 window).
    for e in ddg.edges() {
        let lhs = i64::from(schedule.start[e.dst.index()]) + i64::from(ii) * i64::from(e.distance);
        let rhs = i64::from(schedule.start[e.src.index()]) + i64::from(e.latency);
        if lhs < rhs {
            out.record(Violation::DepDistance {
                src: e.src,
                dst: e.dst,
                iteration: None,
                cycle: None,
                ready_at: None,
            });
        }
    }

    // FU legality and the modulo reservation table, per op in id order.
    // Unlike `Schedule::validate` (first error only), every defect is
    // reported.
    let mut mrt: HashMap<(u32, u32), vliw_ddg::OpId> = HashMap::new();
    let mut fu_known = vec![false; n];
    for op in ddg.ops() {
        let fu = schedule.fu[op.id.index()];
        if fu.index() >= machine.num_fus() {
            out.record(Violation::UnknownFu { op: op.id, fu });
            continue;
        }
        fu_known[op.id.index()] = true;
        if machine.fu(fu).class != op.class() {
            out.record(Violation::WrongFuClass { op: op.id, fu });
        }
        let slot = schedule.start[op.id.index()] % ii;
        match mrt.get(&(slot, fu.0)) {
            Some(&first) => out.record(Violation::FuConflict {
                first,
                second: op.id,
                fu,
                slot: Some(slot),
                cycle: None,
            }),
            None => {
                mrt.insert((slot, fu.0), op.id);
            }
        }
    }

    // Ring adjacency, once per value-carrying flow edge (the simulator's
    // `check_routability` pre-pass).
    let links = link_table(machine);
    let cluster_of = |i: usize| machine.fu(schedule.fu[i]).cluster;
    for e in ddg.edges() {
        if !e.kind.carries_value() {
            continue;
        }
        if !fu_known[e.src.index()] || !fu_known[e.dst.index()] {
            continue;
        }
        let (from, to) = (cluster_of(e.src.index()), cluster_of(e.dst.index()));
        if !machine.clusters_communicate(from, to) {
            out.record(Violation::NonAdjacent { src: e.src, dst: e.dst, from, to });
        }
    }

    // Copy-bus bounds: copy instances per (cluster, modulo slot) against the
    // cluster's copy units, and the steady-state utilisation of the whole bus.
    let mut copies_at: HashMap<(u32, u32), usize> = HashMap::new();
    let mut total_copies = 0usize;
    for op in ddg.ops() {
        if op.class() != OpClass::Copy || !fu_known[op.id.index()] {
            continue;
        }
        total_copies += 1;
        let cluster = cluster_of(op.id.index());
        let slot = schedule.start[op.id.index()] % ii;
        *copies_at.entry((cluster.0, slot)).or_insert(0) += 1;
    }
    let mut oversubscribed: Vec<(u32, u32, usize)> = copies_at
        .into_iter()
        .filter_map(|((cluster, slot), copies)| {
            let units = machine.cluster(ClusterId(cluster)).fus_of_class(OpClass::Copy);
            (copies > units).then_some((cluster, slot, copies))
        })
        .collect();
    oversubscribed.sort_unstable();
    for (cluster, slot, copies) in oversubscribed {
        let units = machine.cluster(ClusterId(cluster)).fus_of_class(OpClass::Copy);
        out.record(Violation::CopyBusOversubscribed {
            cluster: ClusterId(cluster),
            slot,
            copies,
            units,
        });
    }
    let copy_units = machine.num_fus_of_class(OpClass::Copy);
    out.copy_bus_utilisation = if copy_units == 0 || total_copies == 0 {
        0.0
    } else {
        total_copies as f64 / (copy_units as f64 * f64::from(ii))
    };

    // Steady-state storage: one per-use lifetime per value-carrying flow edge
    // (in `ddg.edges()` order, the `vliw_qrf::use_lifetimes` contract),
    // partitioned into the simulator's domains — the producer cluster's
    // private QRF for local flows, the directed ring link for adjacent
    // cross-cluster flows — then MaxLive-counted per pool.  Unroutable flows
    // are excluded, as nothing well-defined occupies storage for them.
    let lifetimes = clamped_use_lifetimes(ddg, schedule);
    let num_clusters = machine.num_clusters();
    let mut private_members: Vec<Vec<u32>> = vec![Vec::new(); num_clusters];
    let mut link_members: Vec<Vec<u32>> = vec![Vec::new(); links.len()];
    let mut k = 0u32;
    for e in ddg.edges() {
        if !e.kind.carries_value() {
            continue;
        }
        let idx = k;
        k += 1;
        if !fu_known[e.src.index()] || !fu_known[e.dst.index()] {
            continue;
        }
        let (from, to) = (cluster_of(e.src.index()), cluster_of(e.dst.index()));
        if from == to {
            private_members[from.index()].push(idx);
        } else if let Some(l) = links.iter().position(|&pair| pair == (from, to)) {
            link_members[l].push(idx);
        }
    }

    let mut diff: Vec<i64> = Vec::new();
    out.peak_private_occupancy = private_members
        .iter()
        .map(|members| max_live_indexed(&lifetimes, members, ii, &mut diff))
        .collect();
    out.peak_comm_occupancy = link_members
        .iter()
        .map(|members| max_live_indexed(&lifetimes, members, ii, &mut diff))
        .collect();

    for (c, &peak) in out.peak_private_occupancy.iter().enumerate() {
        let cfg = machine.cluster(ClusterId(c as u32));
        let capacity = cfg.private_queues * cfg.queue_capacity;
        if peak > capacity {
            out.violations.push(Violation::PrivateOverflow {
                cluster: ClusterId(c as u32),
                occupancy: peak,
                capacity,
                cycle: None,
            });
            out.capacity_faults += 1;
        }
    }
    let link_capacity =
        machine.ring().map(|r| r.queues_per_direction * r.queue_capacity).unwrap_or(0);
    for (l, &peak) in out.peak_comm_occupancy.iter().enumerate() {
        if peak > link_capacity {
            let (from, to) = links[l];
            out.violations.push(Violation::CommOverflow {
                from,
                to,
                occupancy: peak,
                capacity: link_capacity,
                cycle: None,
            });
            out.capacity_faults += 1;
        }
    }

    // Per-queue depth cross-check against the allocator's declarations.
    if let Some(alloc) = allocation {
        let covered = alloc.queues().map(<[u32]>::len).sum::<usize>();
        let in_range = alloc.queues().flatten().all(|&m| (m as usize) < lifetimes.len());
        if covered != lifetimes.len() || !in_range {
            out.record(Violation::BadQueueMap {
                expected_edges: lifetimes.len(),
                actual_edges: covered,
            });
        } else {
            out.peak_queue_occupancy = (0..alloc.num_queues())
                .map(|q| max_live_indexed(&lifetimes, alloc.queue(q), ii, &mut diff))
                .collect();
            for (queue, (&required, &declared)) in
                out.peak_queue_occupancy.iter().zip(&alloc.queue_depths).enumerate()
            {
                if required > declared {
                    out.violations.push(Violation::QueueDepthMismatch {
                        queue,
                        required,
                        declared,
                    });
                    out.capacity_faults += 1;
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, DdgBuilder, LatencyModel, OpKind};
    use vliw_qrf::{allocate_queues, insert_copies, use_lifetimes};
    use vliw_sched::{modulo_schedule, ImsOptions};
    use vliw_sim::simulate;

    fn lat() -> LatencyModel {
        LatencyModel::default()
    }

    #[test]
    fn clean_kernels_verify_clean_on_a_roomy_machine() {
        let machine = Machine::single_cluster(6, 2, 32, lat());
        for lp in kernels::all_kernels(lat()) {
            let rewritten = insert_copies(&lp.ddg, &lat());
            let r = modulo_schedule(&rewritten.ddg, &machine, ImsOptions::default()).unwrap();
            let alloc = {
                let lts = use_lifetimes(&rewritten.ddg, &r.schedule);
                allocate_queues(&lts, r.schedule.ii)
            };
            let v = verify_with_allocation(&rewritten.ddg, &machine, &r.schedule, &alloc);
            assert!(v.is_clean(), "{}: {}", lp.name, v.render_text());
            assert_eq!(v.peak_queue_occupancy, alloc.queue_depths, "{}", lp.name);
        }
    }

    #[test]
    fn static_peaks_match_the_simulators_steady_state_observation() {
        // The equivalence lemma the whole static-occupancy model rests on:
        // with enough iterations to reach steady state, the simulator's
        // per-cluster peak equals the MaxLive watermark the verifier computes.
        let machine = Machine::single_cluster(6, 2, 1024, lat());
        for lp in kernels::all_kernels(lat()) {
            let r = modulo_schedule(&lp.ddg, &machine, ImsOptions::default()).unwrap();
            let v = verify(&lp.ddg, &machine, &r.schedule);
            let run = simulate(&lp.ddg, &machine, &r.schedule, 1000).unwrap();
            assert_eq!(
                v.peak_private_occupancy, run.measurement.peak_private_occupancy,
                "{}",
                lp.name
            );
            assert_eq!(v.peak_comm_occupancy, run.measurement.peak_comm_occupancy, "{}", lp.name);
        }
    }

    #[test]
    fn dependence_violation_is_flagged_with_its_code() {
        let mut b = DdgBuilder::new(lat());
        let ld = b.op(OpKind::Load);
        let add = b.op(OpKind::Add);
        b.flow(ld, add);
        let g = b.finish();
        let machine = Machine::single_cluster(3, 1, 32, lat());
        let ls = machine.fus_of_class(OpClass::Memory).next().unwrap().id;
        let addfu = machine.fus_of_class(OpClass::Adder).next().unwrap().id;
        // Load latency is 2; the add at cycle 1 misses it.
        let s = Schedule::new(2, vec![0, 1], vec![ls, addfu]);
        let v = verify(&g, &machine, &s);
        assert!(!v.is_clean());
        assert_eq!(v.violations.len(), 1);
        assert_eq!(v.violations[0].code(), "V001-DEP-DISTANCE");
        assert_eq!(v.schedule_faults, 1);
    }

    #[test]
    fn structural_gates_short_circuit() {
        let mut b = DdgBuilder::new(lat());
        b.op(OpKind::Add);
        let g = b.finish();
        let machine = Machine::single_cluster(3, 1, 32, lat());
        let addfu = machine.fus_of_class(OpClass::Adder).next().unwrap().id;
        let v = verify(&g, &machine, &Schedule { ii: 2, start: vec![], fu: vec![] });
        assert_eq!(v.violations.len(), 1);
        assert_eq!(v.violations[0].code(), "V005-WRONG-LENGTH");
        let v = verify(&g, &machine, &Schedule { ii: 0, start: vec![0], fu: vec![addfu] });
        assert_eq!(v.violations.len(), 1);
        assert_eq!(v.violations[0].code(), "V011-ZERO-II");
    }

    #[test]
    fn every_mrt_conflict_is_reported_not_just_the_first() {
        let mut b = DdgBuilder::new(lat());
        b.op(OpKind::Add);
        b.op(OpKind::Add);
        b.op(OpKind::Add);
        let g = b.finish();
        let machine = Machine::single_cluster(3, 1, 32, lat());
        let addfu = machine.fus_of_class(OpClass::Adder).next().unwrap().id;
        // All three on one adder at slot 0.
        let s = Schedule::new(2, vec![0, 2, 4], vec![addfu; 3]);
        let v = verify(&g, &machine, &s);
        let conflicts = v.violations.iter().filter(|v| v.code() == "V002-FU-CONFLICT").count();
        assert_eq!(conflicts, 2, "ops 1 and 2 both collide with op 0: {}", v.render_text());
    }

    #[test]
    fn shrunk_queue_depth_is_flagged() {
        let lp = kernels::dot_product(lat(), 100);
        let machine = Machine::single_cluster(6, 2, 32, lat());
        let r = modulo_schedule(&lp.ddg, &machine, ImsOptions::default()).unwrap();
        let lts = use_lifetimes(&lp.ddg, &r.schedule);
        let mut alloc = allocate_queues(&lts, r.schedule.ii);
        let q = alloc.queue_depths.iter().position(|&d| d >= 1).expect("some queue holds a value");
        alloc.queue_depths[q] -= 1;
        let v = verify_with_allocation(&lp.ddg, &machine, &r.schedule, &alloc);
        assert!(v.violations.iter().any(|v| v.code() == "V009-QUEUE-DEPTH"), "{}", v.render_text());
        assert!(v.schedule_is_sound(), "depth accounting is a capacity fault");
    }

    #[test]
    fn truncated_allocation_is_a_bad_queue_map() {
        let lp = kernels::dot_product(lat(), 100);
        let machine = Machine::single_cluster(6, 2, 32, lat());
        let r = modulo_schedule(&lp.ddg, &machine, ImsOptions::default()).unwrap();
        let empty = allocate_queues(&[], r.schedule.ii);
        let v = verify_with_allocation(&lp.ddg, &machine, &r.schedule, &empty);
        assert!(v.violations.iter().any(|v| v.code() == "V012-QUEUE-MAP"), "{}", v.render_text());
    }

    #[test]
    fn tiny_private_budget_is_a_capacity_fault_not_a_schedule_fault() {
        // 1 queue of capacity 8: wide_parallel needs more simultaneous values.
        let machine = Machine::single_cluster(6, 2, 1, lat());
        let lp = kernels::wide_parallel(lat(), 100);
        let r = modulo_schedule(&lp.ddg, &machine, ImsOptions::default()).unwrap();
        let v = verify(&lp.ddg, &machine, &r.schedule);
        if v.max_private_peak() > 8 {
            assert!(!v.is_clean());
            assert!(v.schedule_is_sound());
            assert!(v.violations.iter().all(|v| v.code() == "V006-PRIVATE-OVERFLOW"));
        }
    }

    #[test]
    fn link_table_matches_ring_topology() {
        let four = Machine::paper_clustered(4, lat());
        let links = link_table(&four);
        assert_eq!(links.len(), 8, "4 clusters, 2 directed links each");
        assert_eq!(links[0], (ClusterId(0), ClusterId(1)));
        assert_eq!(links[1], (ClusterId(0), ClusterId(3)));
        let single = Machine::single_cluster(6, 2, 32, lat());
        assert!(link_table(&single).is_empty());
        let two = Machine::paper_clustered(2, lat());
        assert_eq!(link_table(&two).len(), 2, "2 clusters: successor == predecessor");
    }

    #[test]
    fn verification_round_trips_through_serde() {
        let lp = kernels::dot_product(lat(), 100);
        let machine = Machine::single_cluster(6, 2, 32, lat());
        let r = modulo_schedule(&lp.ddg, &machine, ImsOptions::default()).unwrap();
        let lts = use_lifetimes(&lp.ddg, &r.schedule);
        let alloc = allocate_queues(&lts, r.schedule.ii);
        let v = verify_with_allocation(&lp.ddg, &machine, &r.schedule, &alloc);
        let json = serde_json::to_string_pretty(&v).unwrap();
        let back: Verification = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn render_text_reports_clean_and_dirty() {
        let mut v = Verification::empty();
        assert!(v.render_text().contains("clean"));
        v.record(Violation::ZeroIi);
        let text = v.render_text();
        assert!(text.contains("V011-ZERO-II"), "{text}");
        assert!(text.contains("1 schedule"), "{text}");
    }

    #[test]
    fn copy_ops_report_bus_utilisation() {
        let machine = Machine::single_cluster(6, 2, 32, lat());
        for lp in kernels::all_kernels(lat()) {
            let rewritten = insert_copies(&lp.ddg, &lat());
            if rewritten.copy_ops.is_empty() {
                continue;
            }
            let r = modulo_schedule(&rewritten.ddg, &machine, ImsOptions::default()).unwrap();
            let v = verify(&rewritten.ddg, &machine, &r.schedule);
            assert!(v.copy_bus_utilisation > 0.0, "{}", lp.name);
            assert!(v.copy_bus_utilisation <= 1.0, "{}", lp.name);
        }
    }
}
