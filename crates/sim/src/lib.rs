//! Cycle-accurate simulation of modulo-scheduled loop kernels.
//!
//! The rest of the workspace *derives* the paper's headline numbers: dynamic IPC
//! comes from the closed form `ops·N / ((SC−1+N)·II)` and schedules are checked
//! statically ([`vliw_sched::Schedule::validate`]).  This crate *executes* them.
//! [`simulate`] expands a [`vliw_sched::Schedule`] into its prologue /
//! steady-state kernel / epilogue issue slots for a finite trip count ([`expand`])
//! and steps the result cycle by cycle on the [`vliw_machine::Machine`] model:
//!
//! * **per-FU issue** — every functional unit accepts at most one operation per
//!   cycle, and only operations of its class;
//! * **latency-accurate operand readiness** — a consumer may only issue once the
//!   producing instance's result is `latency` cycles old, checked against the
//!   *observed* issue record, not the schedule's promise;
//! * **queue register file occupancy** — every value use is enqueued in its
//!   producer cluster's QRF (or, for cross-cluster flows, in the ring link's
//!   communication queues) at the producer's issue cycle and destructively
//!   dequeued at its consumer's read, with occupancy capacity-checked against the
//!   [`vliw_machine::ClusterConfig`] / [`vliw_machine::RingConfig`] budgets;
//! * **explicit ring copy traffic** — the copy operations inserted by
//!   `vliw_qrf::copyins` execute on the dedicated copy units and their bus
//!   utilisation is measured.
//!
//! The simulator is simultaneously a **dynamic verifier** — any runtime
//! dependence violation, FU double-booking, class mismatch, queue overflow or
//! non-adjacent value flow is reported as a structured [`SimViolation`] — and a
//! **measurement engine** ([`SimMeasurement`]): exact total cycles, simulated
//! dynamic IPC, per-phase issue counts, peak queue occupancy per cluster and per
//! ring link, and copy-bus utilisation.
//!
//! ```
//! use vliw_ddg::{kernels, LatencyModel};
//! use vliw_machine::Machine;
//! use vliw_sched::{modulo_schedule, ImsOptions};
//! use vliw_sim::simulate;
//!
//! let lp = kernels::dot_product(LatencyModel::default(), 1000);
//! let machine = Machine::single_cluster(6, 2, 32, LatencyModel::default());
//! let r = modulo_schedule(&lp.ddg, &machine, ImsOptions::default()).unwrap();
//! let run = simulate(&lp.ddg, &machine, &r.schedule, 100).unwrap();
//! assert!(run.is_clean(), "a statically valid schedule executes cleanly");
//! assert_eq!(run.measurement.total_cycles, r.schedule.total_cycles(100));
//! ```

pub mod engine;
pub mod expand;
pub mod report;
pub mod violation;

pub use engine::{simulate, simulate_with_queue_map, QueueMap, SimSetupError};
pub use expand::{issues_at, phase_of, sim_total_cycles, Phase};
pub use report::{SimMeasurement, SimRun, MAX_RECORDED_VIOLATIONS};
pub use violation::SimViolation;
