//! The cycle-stepping simulation engine.

use std::fmt;

use vliw_ddg::{Ddg, DepKind, OpClass, OpId};
use vliw_machine::{ClusterId, FuId, Machine};
use vliw_sched::Schedule;

use crate::expand::{phase_of, sim_total_cycles, Phase};
use crate::report::{SimMeasurement, SimRun, MAX_RECORDED_VIOLATIONS};
use crate::violation::SimViolation;

/// A structural problem that prevents the simulation from even starting.
///
/// These are distinct from [`SimViolation`]s: a violation is something the
/// machine *observes while executing*; a setup error means the schedule does not
/// describe an execution of this graph on this machine at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimSetupError {
    /// The schedule does not cover every operation of the graph.
    WrongLength {
        /// Operations in the graph.
        expected: usize,
        /// Operations in the schedule.
        actual: usize,
    },
    /// The schedule's initiation interval is zero.
    ZeroIi,
    /// An operation is assigned to a functional unit the machine does not have.
    UnknownFu {
        /// Operation.
        op: OpId,
        /// Assigned unit.
        fu: FuId,
    },
    /// A queue map does not describe this graph: wrong number of entries for the
    /// graph's value-carrying flow edges, or a queue id out of range.
    BadQueueMap {
        /// Value-carrying flow edges in the graph.
        expected_edges: usize,
        /// Entries in the map.
        actual_edges: usize,
    },
}

impl fmt::Display for SimSetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimSetupError::WrongLength { expected, actual } => {
                write!(f, "schedule covers {actual} operations, graph has {expected}")
            }
            SimSetupError::ZeroIi => write!(f, "cannot simulate a schedule with II = 0"),
            SimSetupError::UnknownFu { op, fu } => {
                write!(f, "{op} assigned to nonexistent {fu}")
            }
            SimSetupError::BadQueueMap { expected_edges, actual_edges } => {
                write!(
                    f,
                    "queue map covers {actual_edges} flow edges, graph has {expected_edges} \
                     (or a queue id is out of range)"
                )
            }
        }
    }
}

impl std::error::Error for SimSetupError {}

/// Storage domain a queue-resident value instance lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Domain {
    /// The private QRF of one cluster.
    Private(u32),
    /// A directed communication link of the ring (index into the link table).
    Link(u32),
    /// No physical path exists (non-adjacent clusters); nothing to account.
    Unroutable,
}

/// Sentinel queue id for flow uses not tracked per queue.
const NO_QUEUE: u32 = u32::MAX;

/// One side of a flow edge as seen from an issuing instance.
#[derive(Debug, Clone, Copy)]
struct FlowUse {
    /// The *other* endpoint's flat issue cycle (producer start for incoming
    /// uses, consumer start for outgoing ones).
    other_start: u64,
    /// Iteration distance of the edge.
    distance: u64,
    /// Where the instance is stored.
    domain: Domain,
    /// Physical queue this flow was allocated to ([`NO_QUEUE`] when the run has
    /// no queue map or the edge is unmapped).
    queue: u32,
}

/// An assignment of value-carrying flow edges to physical queues, used to track
/// per-queue occupancy over time (the execution-observed counterpart of the
/// allocator's reported `queue_depths`).
///
/// `queue_of[k]` is the queue holding the `k`-th value-carrying flow edge of the
/// graph, in `ddg.edges()` order — the same order `vliw_qrf::use_lifetimes`
/// extracts per-use lifetimes, so indices into a
/// `vliw_qrf::QueueAllocation::queues` member list translate directly.  Queue
/// ids are dense in `0..num_queues`; `None` leaves an edge untracked (useful
/// when only one pool of a clustered machine is being cross-checked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueMap {
    /// Queue id per value-carrying flow edge.
    pub queue_of: Vec<Option<u32>>,
    /// Total number of queues (length of the reported peak table).
    pub num_queues: usize,
}

/// A dependence to check at issue time: the consumer side of any edge kind.
#[derive(Debug, Clone, Copy)]
struct PredDep {
    src: OpId,
    latency: u64,
    distance: u64,
}

/// Simulates `schedule` executing `trip_count` iterations of `ddg` on `machine`.
///
/// Returns a [`SimRun`] holding the measurements and every runtime violation
/// observed, or a [`SimSetupError`] when the schedule structurally cannot drive
/// an execution (wrong length, II of zero, nonexistent FU).  A zero trip count
/// or an empty graph simulates to an empty, clean run.
pub fn simulate(
    ddg: &Ddg,
    machine: &Machine,
    schedule: &Schedule,
    trip_count: u64,
) -> Result<SimRun, SimSetupError> {
    simulate_inner(ddg, machine, schedule, trip_count, None)
}

/// Like [`simulate`], but additionally tracks the occupancy of each physical
/// queue of `queue_map` over time; the observed per-queue peaks are reported in
/// [`crate::SimMeasurement::peak_queue_occupancy`].
///
/// This is the dynamic side of the allocator-vs-simulator depth cross-check: at
/// steady state the peak of each queue must equal the `queue_depths` entry the
/// allocator derived for it from whole-wrap MaxLive counting.
pub fn simulate_with_queue_map(
    ddg: &Ddg,
    machine: &Machine,
    schedule: &Schedule,
    trip_count: u64,
    queue_map: &QueueMap,
) -> Result<SimRun, SimSetupError> {
    simulate_inner(ddg, machine, schedule, trip_count, Some(queue_map))
}

fn simulate_inner(
    ddg: &Ddg,
    machine: &Machine,
    schedule: &Schedule,
    trip_count: u64,
    queue_map: Option<&QueueMap>,
) -> Result<SimRun, SimSetupError> {
    let _span = vliw_obs::span!("sim", trip_count);
    let n = ddg.num_ops();
    if schedule.start.len() != n {
        return Err(SimSetupError::WrongLength { expected: n, actual: schedule.start.len() });
    }
    if schedule.ii == 0 {
        return Err(SimSetupError::ZeroIi);
    }
    for op in ddg.ops() {
        let fu = schedule.fu_of(op.id);
        if fu.index() >= machine.num_fus() {
            return Err(SimSetupError::UnknownFu { op: op.id, fu });
        }
    }
    if let Some(map) = queue_map {
        let flow_edges = ddg.edges().filter(|e| e.kind.carries_value()).count();
        let ids_in_range =
            map.queue_of.iter().flatten().all(|&q| (q as usize) < map.num_queues && q != NO_QUEUE);
        if map.queue_of.len() != flow_edges || !ids_in_range {
            return Err(SimSetupError::BadQueueMap {
                expected_edges: flow_edges,
                actual_edges: map.queue_of.len(),
            });
        }
    }
    Engine::new(ddg, machine, schedule, trip_count, queue_map).run()
}

/// The directed ring links of `machine`, in deterministic order (producing
/// cluster ascending, successor neighbour before predecessor neighbour).
fn link_table(machine: &Machine) -> Vec<(ClusterId, ClusterId)> {
    let n = machine.num_clusters();
    if n <= 1 {
        return Vec::new();
    }
    let mut links = Vec::with_capacity(n * 2);
    for c in 0..n {
        let next = (c + 1) % n;
        let prev = (c + n - 1) % n;
        links.push((ClusterId(c as u32), ClusterId(next as u32)));
        if prev != next {
            links.push((ClusterId(c as u32), ClusterId(prev as u32)));
        }
    }
    links
}

struct Engine<'a> {
    ddg: &'a Ddg,
    machine: &'a Machine,
    schedule: &'a Schedule,
    trip_count: u64,
    ii: u64,
    total_cycles: u64,
    /// Operation indices issuing in each modulo slot.
    slot_ops: Vec<Vec<u32>>,
    /// Flat issue cycle of each operation, widened once.
    starts: Vec<u64>,
    /// Cluster index of each operation (via its assigned FU).
    cluster_of: Vec<u32>,
    /// Consumer-side dependences per operation (all edge kinds).
    preds: Vec<Vec<PredDep>>,
    /// Incoming flow uses per operation (dequeued at the consumer's read).
    flow_in: Vec<Vec<FlowUse>>,
    /// Outgoing flow uses per operation (enqueued at the producer's write).
    flow_out: Vec<Vec<FlowUse>>,
    /// Directed ring links, `(from, to)`.
    links: Vec<(ClusterId, ClusterId)>,
    /// Issue record ring buffer: stamp (`iteration + 1`, 0 = empty) and cycle
    /// per (iteration mod window, op).
    window: usize,
    rec_stamp: Vec<u64>,
    rec_cycle: Vec<u64>,
    /// Per-FU last issue cycle and issuer, for double-booking detection.
    fu_cycle: Vec<u64>,
    fu_op: Vec<u32>,
    /// Queue occupancy state (signed: a violating schedule can dequeue early).
    private_occ: Vec<i64>,
    link_occ: Vec<i64>,
    private_peak: Vec<usize>,
    link_peak: Vec<usize>,
    /// Per-physical-queue occupancy and peaks, tracked only when a
    /// [`QueueMap`] was supplied (both empty otherwise).
    queue_occ: Vec<i64>,
    queue_peak: Vec<usize>,
    private_capacity: Vec<usize>,
    link_capacity: usize,
    private_overflowed: Vec<bool>,
    link_overflowed: Vec<bool>,
    /// Violation accumulator.
    violations: Vec<SimViolation>,
    schedule_faults: u64,
    capacity_faults: u64,
}

impl<'a> Engine<'a> {
    fn new(
        ddg: &'a Ddg,
        machine: &'a Machine,
        schedule: &'a Schedule,
        trip_count: u64,
        queue_map: Option<&QueueMap>,
    ) -> Self {
        let n = ddg.num_ops();
        let ii = u64::from(schedule.ii);
        let links = link_table(machine);
        let link_index = |from: ClusterId, to: ClusterId| -> Domain {
            match links.iter().position(|&l| l == (from, to)) {
                Some(i) => Domain::Link(i as u32),
                None => Domain::Unroutable,
            }
        };

        let starts: Vec<u64> = schedule.start.iter().map(|&s| u64::from(s)).collect();
        let mut slot_ops = vec![Vec::new(); schedule.ii as usize];
        for (i, &s) in starts.iter().enumerate() {
            slot_ops[(s % ii) as usize].push(i as u32);
        }
        let cluster_of: Vec<u32> =
            (0..n).map(|i| machine.fu(schedule.fu[i]).cluster.index() as u32).collect();

        let mut preds = vec![Vec::new(); n];
        let mut flow_in = vec![Vec::new(); n];
        let mut flow_out = vec![Vec::new(); n];
        let mut max_dist = 0u64;
        // Index over value-carrying flow edges, in `ddg.edges()` order — the
        // ordering contract of [`QueueMap`] (and of `vliw_qrf::use_lifetimes`).
        let mut flow_idx = 0usize;
        for e in ddg.edges() {
            let dist = u64::from(e.distance);
            max_dist = max_dist.max(dist);
            preds[e.dst.index()].push(PredDep {
                src: e.src,
                latency: u64::from(e.latency),
                distance: dist,
            });
            // `carries_value()` (== Flow today) keeps the `flow_idx` ordering
            // aligned with `vliw_qrf::use_lifetimes` by construction.
            if !e.kind.carries_value() {
                continue;
            }
            let queue = match queue_map {
                Some(map) => map.queue_of[flow_idx].unwrap_or(NO_QUEUE),
                None => NO_QUEUE,
            };
            flow_idx += 1;
            let from = ClusterId(cluster_of[e.src.index()]);
            let to = ClusterId(cluster_of[e.dst.index()]);
            let domain = if from == to { Domain::Private(from.0) } else { link_index(from, to) };
            flow_in[e.dst.index()].push(FlowUse {
                other_start: starts[e.src.index()],
                distance: dist,
                domain,
                queue,
            });
            flow_out[e.src.index()].push(FlowUse {
                other_start: starts[e.dst.index()],
                distance: dist,
                domain,
                queue,
            });
        }

        let sc = u64::from(schedule.stage_count());
        let window = (sc + max_dist + 2) as usize;
        let num_clusters = machine.num_clusters();
        let private_capacity: Vec<usize> = machine
            .cluster_ids()
            .map(|c| {
                let cfg = machine.cluster(c);
                cfg.private_queues * cfg.queue_capacity
            })
            .collect();
        let link_capacity =
            machine.ring().map(|r| r.queues_per_direction * r.queue_capacity).unwrap_or(0);

        Engine {
            ddg,
            machine,
            schedule,
            trip_count,
            ii,
            total_cycles: sim_total_cycles(schedule, trip_count),
            slot_ops,
            starts,
            cluster_of,
            preds,
            flow_in,
            flow_out,
            link_peak: vec![0; links.len()],
            link_occ: vec![0; links.len()],
            link_overflowed: vec![false; links.len()],
            queue_occ: vec![0; queue_map.map_or(0, |m| m.num_queues)],
            queue_peak: vec![0; queue_map.map_or(0, |m| m.num_queues)],
            links,
            window,
            rec_stamp: vec![0; window * n.max(1)],
            rec_cycle: vec![0; window * n.max(1)],
            fu_cycle: vec![u64::MAX; machine.num_fus()],
            fu_op: vec![0; machine.num_fus()],
            private_occ: vec![0; num_clusters],
            private_peak: vec![0; num_clusters],
            private_capacity,
            link_capacity,
            private_overflowed: vec![false; num_clusters],
            violations: Vec::new(),
            schedule_faults: 0,
            capacity_faults: 0,
        }
    }

    fn record(&mut self, v: SimViolation) {
        if v.is_schedule_fault() {
            self.schedule_faults += 1;
        } else {
            self.capacity_faults += 1;
        }
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(v);
        }
    }

    /// Structural pre-pass: flow edges between non-adjacent clusters have no
    /// physical path, reported once per edge rather than once per iteration.
    fn check_routability(&mut self) {
        let mut unroutable = Vec::new();
        for e in self.ddg.edges() {
            if e.kind != DepKind::Flow {
                continue;
            }
            let from = ClusterId(self.cluster_of[e.src.index()]);
            let to = ClusterId(self.cluster_of[e.dst.index()]);
            if !self.machine.clusters_communicate(from, to) {
                unroutable.push(SimViolation::NonAdjacentCommunication {
                    src: e.src,
                    dst: e.dst,
                    from,
                    to,
                });
            }
        }
        for v in unroutable {
            self.record(v);
        }
    }

    fn run(mut self) -> Result<SimRun, SimSetupError> {
        let n = self.ddg.num_ops();
        if n == 0 || self.trip_count == 0 {
            return Ok(self.finish(0, 0, 0, 0, 0));
        }
        self.check_routability();

        let mut issued = 0u64;
        let mut copy_issued = 0u64;
        let mut phase_issues = [0u64; 3];
        // Reused per cycle: the instances `(op, iteration)` issuing this cycle.
        let mut issuing: Vec<(u32, u64)> = Vec::new();

        for cycle in 0..self.total_cycles {
            let slot = (cycle % self.ii) as usize;
            issuing.clear();
            for si in 0..self.slot_ops[slot].len() {
                let i = self.slot_ops[slot][si];
                let start = self.starts[i as usize];
                if cycle >= start {
                    let k = (cycle - start) / self.ii;
                    if k < self.trip_count {
                        issuing.push((i, k));
                    }
                }
            }
            if issuing.is_empty() {
                continue;
            }

            let phase = match phase_of(self.schedule, self.trip_count, cycle) {
                Phase::Prologue => 0,
                Phase::Kernel => 1,
                Phase::Epilogue => 2,
            };
            // 1. Issue: record the observation, book the FU, count.
            for &(i, k) in &issuing {
                let slot = (k as usize % self.window) * n + i as usize;
                self.rec_stamp[slot] = k + 1;
                self.rec_cycle[slot] = cycle;
                issued += 1;
                phase_issues[phase] += 1;

                let op = OpId(i);
                let fu = self.schedule.fu[i as usize];
                let unit = self.machine.fu(fu);
                if k == 0 && unit.class != self.ddg.op(op).class() {
                    self.record(SimViolation::WrongFuClass { op, fu });
                }
                if unit.class == OpClass::Copy {
                    copy_issued += 1;
                }
                if self.fu_cycle[fu.index()] == cycle {
                    let first = OpId(self.fu_op[fu.index()]);
                    self.record(SimViolation::FuConflict { fu, cycle, first, second: op });
                } else {
                    self.fu_cycle[fu.index()] = cycle;
                    self.fu_op[fu.index()] = i;
                }
            }
            // 2. Operand readiness, against the observed issue record.
            for &(i, k) in &issuing {
                for pi in 0..self.preds[i as usize].len() {
                    let dep = self.preds[i as usize][pi];
                    if k < dep.distance {
                        continue;
                    }
                    let kp = k - dep.distance;
                    let slot = (kp as usize % self.window) * n + dep.src.index();
                    let ready_at = if self.rec_stamp[slot] == kp + 1 {
                        Some(self.rec_cycle[slot] + dep.latency)
                    } else {
                        None
                    };
                    if ready_at.is_none_or(|r| r > cycle) {
                        self.record(SimViolation::OperandNotReady {
                            src: dep.src,
                            dst: OpId(i),
                            iteration: k,
                            cycle,
                            ready_at,
                        });
                    }
                }
            }
            // 3. Queue traffic: destructive reads free their slot before the
            //    cycle's writes claim theirs.
            for &(i, k) in &issuing {
                for ui in 0..self.flow_in[i as usize].len() {
                    let usage = self.flow_in[i as usize][ui];
                    if k < usage.distance {
                        continue;
                    }
                    // Zero-length instances (write and read in the same cycle)
                    // never occupy storage; skip them on both sides.
                    let write_cycle = usage.other_start + (k - usage.distance) * self.ii;
                    if write_cycle == cycle {
                        continue;
                    }
                    self.adjust_occupancy(usage.domain, -1);
                    if usage.queue != NO_QUEUE {
                        self.queue_occ[usage.queue as usize] -= 1;
                    }
                }
            }
            for &(i, k) in &issuing {
                for ui in 0..self.flow_out[i as usize].len() {
                    let usage = self.flow_out[i as usize][ui];
                    let kc = k + usage.distance;
                    // Instances whose consumer iteration never executes are
                    // architecturally dead: the epilogue discards them.
                    if kc >= self.trip_count {
                        continue;
                    }
                    let read_cycle = usage.other_start + kc * self.ii;
                    if read_cycle == cycle {
                        continue;
                    }
                    self.adjust_occupancy(usage.domain, 1);
                    if usage.queue != NO_QUEUE {
                        // Per-queue occupancy only ever rises at an enqueue (the
                        // cycle's dequeues ran first), so sampling the peak here
                        // is exact — no per-cycle scan of the queue table.
                        let q = usage.queue as usize;
                        self.queue_occ[q] += 1;
                        let occ = self.queue_occ[q].max(0) as usize;
                        self.queue_peak[q] = self.queue_peak[q].max(occ);
                    }
                }
            }
            self.sample_occupancy(cycle);
        }

        Ok(self.finish(issued, copy_issued, phase_issues[0], phase_issues[1], phase_issues[2]))
    }

    fn adjust_occupancy(&mut self, domain: Domain, delta: i64) {
        match domain {
            Domain::Private(c) => self.private_occ[c as usize] += delta,
            Domain::Link(l) => self.link_occ[l as usize] += delta,
            Domain::Unroutable => {}
        }
    }

    /// Updates the peak trackers and capacity checks after a cycle's events.
    fn sample_occupancy(&mut self, cycle: u64) {
        for c in 0..self.private_occ.len() {
            let occ = self.private_occ[c].max(0) as usize;
            self.private_peak[c] = self.private_peak[c].max(occ);
            if occ > self.private_capacity[c] && !self.private_overflowed[c] {
                self.private_overflowed[c] = true;
                self.record(SimViolation::PrivateQueueOverflow {
                    cluster: ClusterId(c as u32),
                    cycle,
                    occupancy: occ,
                    capacity: self.private_capacity[c],
                });
            }
        }
        for l in 0..self.link_occ.len() {
            let occ = self.link_occ[l].max(0) as usize;
            self.link_peak[l] = self.link_peak[l].max(occ);
            if occ > self.link_capacity && !self.link_overflowed[l] {
                self.link_overflowed[l] = true;
                let (from, to) = self.links[l];
                self.record(SimViolation::CommQueueOverflow {
                    from,
                    to,
                    cycle,
                    occupancy: occ,
                    capacity: self.link_capacity,
                });
            }
        }
    }

    fn finish(
        self,
        issued: u64,
        copy_issued: u64,
        prologue: u64,
        kernel: u64,
        epilogue: u64,
    ) -> SimRun {
        let total_cycles = if issued == 0 { 0 } else { self.total_cycles };
        let copy_units = self.machine.num_fus_of_class(OpClass::Copy) as u64;
        let copy_slots = copy_units * total_cycles;
        let measurement = SimMeasurement {
            trip_count: self.trip_count,
            total_cycles,
            issued_ops: issued,
            prologue_issues: prologue,
            kernel_issues: kernel,
            epilogue_issues: epilogue,
            copy_ops_issued: copy_issued,
            dynamic_ipc: if total_cycles == 0 { 0.0 } else { issued as f64 / total_cycles as f64 },
            peak_private_occupancy: self.private_peak,
            peak_comm_occupancy: self.link_peak,
            peak_queue_occupancy: self.queue_peak,
            copy_bus_utilisation: if copy_slots == 0 {
                0.0
            } else {
                copy_issued as f64 / copy_slots as f64
            },
        };
        SimRun {
            measurement,
            violations: self.violations,
            schedule_faults: self.schedule_faults,
            capacity_faults: self.capacity_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, DdgBuilder, LatencyModel, OpKind};
    use vliw_machine::{ClusterConfig, Machine, RingConfig};
    use vliw_sched::{modulo_schedule, ImsOptions};

    fn simple_graph() -> Ddg {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ld = b.op(OpKind::Load);
        let add = b.op(OpKind::Add);
        b.flow(ld, add);
        b.finish()
    }

    fn machine() -> Machine {
        Machine::single_cluster(3, 1, 32, LatencyModel::default())
    }

    fn fu_of(m: &Machine, class: OpClass, nth: usize) -> FuId {
        m.fus_of_class(class).nth(nth).unwrap().id
    }

    #[test]
    fn valid_schedule_simulates_cleanly() {
        let g = simple_graph();
        let m = machine();
        let ls = fu_of(&m, OpClass::Memory, 0);
        let add = fu_of(&m, OpClass::Adder, 0);
        let s = Schedule::new(2, vec![0, 2], vec![ls, add]);
        assert!(s.validate(&g, &m).is_ok());
        let run = simulate(&g, &m, &s, 10).unwrap();
        assert!(run.is_clean(), "violations: {:?}", run.violations);
        assert_eq!(run.measurement.total_cycles, s.total_cycles(10));
        assert_eq!(run.measurement.issued_ops, 20);
        assert_eq!(
            run.measurement.prologue_issues
                + run.measurement.kernel_issues
                + run.measurement.epilogue_issues,
            20
        );
        assert!(run.measurement.dynamic_ipc > 0.0);
    }

    #[test]
    fn dependence_violation_is_observed_at_runtime() {
        let g = simple_graph();
        let m = machine();
        let ls = fu_of(&m, OpClass::Memory, 0);
        let add = fu_of(&m, OpClass::Adder, 0);
        // Load has latency 2, so the add cannot start one cycle later.
        let s = Schedule::new(2, vec![0, 1], vec![ls, add]);
        assert!(s.validate(&g, &m).is_err());
        let run = simulate(&g, &m, &s, 5).unwrap();
        assert!(!run.is_clean());
        // One violation per iteration: the same dependence misses every time.
        assert_eq!(run.schedule_faults, 5);
        assert!(matches!(
            run.violations[0],
            SimViolation::OperandNotReady { src: OpId(0), dst: OpId(1), iteration: 0, .. }
        ));
    }

    #[test]
    fn consumer_scheduled_before_producer_reports_unready_operand() {
        let g = simple_graph();
        let m = machine();
        let ls = fu_of(&m, OpClass::Memory, 0);
        let add = fu_of(&m, OpClass::Adder, 0);
        let s = Schedule::new(4, vec![2, 0], vec![ls, add]);
        let run = simulate(&g, &m, &s, 2).unwrap();
        assert!(run
            .violations
            .iter()
            .any(|v| matches!(v, SimViolation::OperandNotReady { ready_at: None, .. })));
    }

    #[test]
    fn fu_double_booking_is_observed() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.op(OpKind::Load);
        b.op(OpKind::Load);
        let g = b.finish();
        let m = machine();
        let ls = fu_of(&m, OpClass::Memory, 0);
        let s = Schedule::new(2, vec![0, 2], vec![ls, ls]);
        let run = simulate(&g, &m, &s, 4).unwrap();
        assert!(!run.is_clean());
        assert!(matches!(run.violations[0], SimViolation::FuConflict { .. }));
        // At different modulo slots the same unit is fine.
        let s = Schedule::new(2, vec![0, 1], vec![ls, ls]);
        assert!(simulate(&g, &m, &s, 4).unwrap().is_clean());
    }

    #[test]
    fn wrong_class_is_observed_once() {
        let g = simple_graph();
        let m = machine();
        let add = fu_of(&m, OpClass::Adder, 0);
        let s = Schedule::new(2, vec![0, 2], vec![add, add]);
        let run = simulate(&g, &m, &s, 10).unwrap();
        let class_faults = run
            .violations
            .iter()
            .filter(|v| matches!(v, SimViolation::WrongFuClass { .. }))
            .count();
        assert_eq!(class_faults, 1, "a static property is reported once, not per iteration");
    }

    #[test]
    fn setup_errors_are_not_violations() {
        let g = simple_graph();
        let m = machine();
        let s = Schedule::new(2, vec![0], vec![FuId(0)]);
        assert_eq!(
            simulate(&g, &m, &s, 1),
            Err(SimSetupError::WrongLength { expected: 2, actual: 1 })
        );
        let s = Schedule::new(0, vec![0, 2], vec![FuId(0), FuId(1)]);
        assert_eq!(simulate(&g, &m, &s, 1), Err(SimSetupError::ZeroIi));
        let s = Schedule::new(2, vec![0, 2], vec![FuId(95), FuId(96)]);
        assert!(matches!(simulate(&g, &m, &s, 1), Err(SimSetupError::UnknownFu { .. })));
    }

    #[test]
    fn zero_trip_count_spans_no_cycles() {
        let g = simple_graph();
        let m = machine();
        let ls = fu_of(&m, OpClass::Memory, 0);
        let add = fu_of(&m, OpClass::Adder, 0);
        let s = Schedule::new(2, vec![0, 2], vec![ls, add]);
        let run = simulate(&g, &m, &s, 0).unwrap();
        assert!(run.is_clean());
        assert_eq!(run.measurement.total_cycles, 0);
        assert_eq!(run.measurement.issued_ops, 0);
        assert_eq!(run.measurement.dynamic_ipc, 0.0);
    }

    #[test]
    fn private_queue_overflow_is_detected() {
        // A machine whose cluster can hold exactly one value: two overlapping
        // lifetimes overflow it.
        let cluster = ClusterConfig {
            fu_classes: vec![vliw_ddg::OpClass::Memory, vliw_ddg::OpClass::Adder],
            copy_units: 0,
            private_queues: 1,
            queue_capacity: 1,
        };
        let m = Machine::new("tiny", vec![cluster], None, LatencyModel::default());
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ld = b.op(OpKind::Load);
        let a1 = b.op(OpKind::Add);
        let a2 = b.op(OpKind::Add);
        b.flow(ld, a1);
        b.flow(a1, a2);
        let g = b.finish();
        let ls = fu_of(&m, OpClass::Memory, 0);
        let add = fu_of(&m, OpClass::Adder, 0);
        // ld's value lives [0, 4): with II 2 two instances of that lifetime
        // overlap each other, exceeding the single slot.
        let s = Schedule::new(2, vec![0, 4, 5], vec![ls, add, add]);
        assert!(s.validate(&g, &m).is_ok(), "statically fine — queues are not validated");
        let run = simulate(&g, &m, &s, 10).unwrap();
        assert!(run
            .violations
            .iter()
            .any(|v| matches!(v, SimViolation::PrivateQueueOverflow { .. })));
        assert!(run.measurement.max_private_peak() > 1);
    }

    #[test]
    fn non_adjacent_flow_is_detected_once_per_edge() {
        let m = Machine::paper_clustered(4, LatencyModel::default());
        let g = simple_graph();
        // Producer in cluster 0, consumer in cluster 2: across the ring.
        let ls0 = m.fu_ids_of_class_in_cluster(ClusterId(0), OpClass::Memory)[0];
        let add2 = m.fu_ids_of_class_in_cluster(ClusterId(2), OpClass::Adder)[0];
        let s = Schedule::new(2, vec![0, 2], vec![ls0, add2]);
        let run = simulate(&g, &m, &s, 20).unwrap();
        let adjacency_faults = run
            .violations
            .iter()
            .filter(|v| matches!(v, SimViolation::NonAdjacentCommunication { .. }))
            .count();
        assert_eq!(adjacency_faults, 1);
    }

    #[test]
    fn cross_cluster_flow_occupies_the_ring_link() {
        let m = Machine::paper_clustered(4, LatencyModel::default());
        let g = simple_graph();
        let ls0 = m.fu_ids_of_class_in_cluster(ClusterId(0), OpClass::Memory)[0];
        let add1 = m.fu_ids_of_class_in_cluster(ClusterId(1), OpClass::Adder)[0];
        let s = Schedule::new(2, vec![0, 2], vec![ls0, add1]);
        let run = simulate(&g, &m, &s, 20).unwrap();
        assert!(run.is_clean(), "violations: {:?}", run.violations);
        assert!(run.measurement.max_comm_peak() >= 1, "the value crosses 0 -> 1");
        assert_eq!(run.measurement.max_private_peak(), 0, "nothing stays local");
    }

    #[test]
    fn comm_queue_overflow_is_detected() {
        // A two-cluster ring whose links hold exactly one value.
        let ring = RingConfig { queues_per_direction: 1, queue_capacity: 1 };
        let clusters = vec![ClusterConfig::paper_basic(), ClusterConfig::paper_basic()];
        let m = Machine::new("tiny-ring", clusters, Some(ring), LatencyModel::default());
        let mut b = DdgBuilder::new(LatencyModel::default());
        let l1 = b.op(OpKind::Load);
        let a1 = b.op(OpKind::Add);
        b.flow(l1, a1);
        let g = b.finish();
        let ls0 = m.fu_ids_of_class_in_cluster(ClusterId(0), OpClass::Memory)[0];
        let add1 = m.fu_ids_of_class_in_cluster(ClusterId(1), OpClass::Adder)[0];
        // The lifetime spans [0, 6) at II 2: three instances overlap, the link
        // holds one.
        let s = Schedule::new(2, vec![0, 6], vec![ls0, add1]);
        let run = simulate(&g, &m, &s, 10).unwrap();
        assert!(run.violations.iter().any(|v| matches!(v, SimViolation::CommQueueOverflow { .. })));
    }

    #[test]
    fn violation_recording_is_capped_but_counting_is_not() {
        let g = simple_graph();
        let m = machine();
        let ls = fu_of(&m, OpClass::Memory, 0);
        let add = fu_of(&m, OpClass::Adder, 0);
        let s = Schedule::new(2, vec![0, 1], vec![ls, add]);
        let run = simulate(&g, &m, &s, 500).unwrap();
        assert_eq!(run.violations.len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(run.total_violations(), 500);
        assert_eq!(run.schedule_faults, 500);
    }

    #[test]
    fn scheduled_kernels_are_clean_and_match_the_closed_forms() {
        let lat = LatencyModel::default();
        let m = Machine::single_cluster(6, 2, 32, lat);
        for lp in kernels::all_kernels(lat) {
            let r = modulo_schedule(&lp.ddg, &m, ImsOptions::default()).unwrap();
            for n in [1u64, 2, 3, 10, 100] {
                let run = simulate(&lp.ddg, &m, &r.schedule, n).unwrap();
                assert!(run.is_clean(), "{} N={n}: {:?}", lp.name, run.violations);
                assert_eq!(
                    run.measurement.total_cycles,
                    r.schedule.total_cycles(n),
                    "{} N={n}",
                    lp.name
                );
                assert_eq!(run.measurement.issued_ops, lp.ddg.num_ops() as u64 * n);
            }
        }
    }

    #[test]
    fn loop_carried_dependences_are_checked_across_iterations() {
        // acc -> acc with latency 3 at distance 1 needs II >= 3; at II 2 the
        // static validator and the dynamic verifier must both reject.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let acc = b.op(OpKind::Add);
        b.edge_with_latency(acc, acc, vliw_ddg::DepKind::Flow, 3, 1);
        let g = b.finish();
        let m = machine();
        let add = fu_of(&m, OpClass::Adder, 0);
        let bad = Schedule::new(2, vec![0], vec![add]);
        assert!(bad.validate(&g, &m).is_err());
        let run = simulate(&g, &m, &bad, 5).unwrap();
        // Iterations 1..5 each read a value produced one cycle too late.
        assert_eq!(run.schedule_faults, 4);
        let good = Schedule::new(3, vec![0], vec![add]);
        assert!(good.validate(&g, &m).is_ok());
        assert!(simulate(&g, &m, &good, 5).unwrap().is_clean());
    }

    #[test]
    fn peak_occupancy_reaches_max_live_at_steady_state() {
        use vliw_qrf::{max_live, use_lifetimes};
        let lat = LatencyModel::default();
        let m = Machine::single_cluster(6, 2, 1024, lat);
        for lp in kernels::all_kernels(lat) {
            let r = modulo_schedule(&lp.ddg, &m, ImsOptions::default()).unwrap();
            let lts = use_lifetimes(&lp.ddg, &r.schedule);
            let expected = max_live(&lts, r.schedule.ii);
            let run = simulate(&lp.ddg, &m, &r.schedule, 1000).unwrap();
            assert_eq!(
                run.measurement.max_private_peak(),
                expected,
                "{}: simulated peak must equal MaxLive at steady state",
                lp.name
            );
        }
    }

    #[test]
    fn per_queue_peaks_match_the_allocators_depths() {
        // The allocator-vs-simulator depth cross-check: the allocator derives
        // each queue's depth from whole-wrap MaxLive counting over its members;
        // the simulator observes enqueue-on-write / destructive-dequeue-on-read
        // occupancy over time.  At steady state they must agree per queue,
        // including lifetimes that wrap the II several times.
        use vliw_qrf::{allocate_queues, use_lifetimes};
        let lat = LatencyModel::default();
        let m = Machine::single_cluster(6, 2, 1024, lat);
        for lp in kernels::all_kernels(lat) {
            let r = modulo_schedule(&lp.ddg, &m, ImsOptions::default()).unwrap();
            let lts = use_lifetimes(&lp.ddg, &r.schedule);
            let alloc = allocate_queues(&lts, r.schedule.ii);
            let mut queue_of = vec![None; lts.len()];
            for (q, members) in alloc.queues().enumerate() {
                for &k in members {
                    queue_of[k as usize] = Some(q as u32);
                }
            }
            let map = QueueMap { queue_of, num_queues: alloc.num_queues() };
            let run = simulate_with_queue_map(&lp.ddg, &m, &r.schedule, 1000, &map).unwrap();
            assert!(run.is_clean(), "{}: {:?}", lp.name, run.violations);
            assert_eq!(
                run.measurement.peak_queue_occupancy, alloc.queue_depths,
                "{}: observed per-queue peaks diverge from the allocator's depths",
                lp.name
            );
        }
    }

    #[test]
    fn queue_map_must_cover_every_flow_edge() {
        let g = simple_graph();
        let m = machine();
        let ls = fu_of(&m, OpClass::Memory, 0);
        let add = fu_of(&m, OpClass::Adder, 0);
        let s = Schedule::new(2, vec![0, 2], vec![ls, add]);
        // One flow edge, but an empty map.
        let map = QueueMap { queue_of: vec![], num_queues: 0 };
        assert!(matches!(
            simulate_with_queue_map(&g, &m, &s, 5, &map),
            Err(SimSetupError::BadQueueMap { expected_edges: 1, actual_edges: 0 })
        ));
        // Right length, out-of-range id.
        let map = QueueMap { queue_of: vec![Some(3)], num_queues: 1 };
        assert!(matches!(
            simulate_with_queue_map(&g, &m, &s, 5, &map),
            Err(SimSetupError::BadQueueMap { .. })
        ));
        // Unmapped edges are allowed and leave the peak table untouched.
        let map = QueueMap { queue_of: vec![None], num_queues: 2 };
        let run = simulate_with_queue_map(&g, &m, &s, 5, &map).unwrap();
        assert_eq!(run.measurement.peak_queue_occupancy, vec![0, 0]);
        // A plain run reports no per-queue table at all.
        let run = simulate(&g, &m, &s, 5).unwrap();
        assert!(run.measurement.peak_queue_occupancy.is_empty());
    }

    #[test]
    fn copy_bus_utilisation_counts_copy_traffic() {
        use vliw_qrf::insert_copies;
        let lat = LatencyModel::default();
        let m = Machine::single_cluster(6, 2, 1024, lat);
        let lp = kernels::wide_parallel(lat, 100);
        let body = insert_copies(&lp.ddg, &lat);
        assert!(body.num_copies() > 0);
        let r = modulo_schedule(&body.ddg, &m, ImsOptions::default()).unwrap();
        let run = simulate(&body.ddg, &m, &r.schedule, 50).unwrap();
        assert!(run.is_clean(), "violations: {:?}", run.violations);
        assert_eq!(run.measurement.copy_ops_issued, body.num_copies() as u64 * 50);
        assert!(run.measurement.copy_bus_utilisation > 0.0);
        assert!(run.measurement.copy_bus_utilisation <= 1.0);
    }

    #[test]
    fn simulated_ipc_equals_the_closed_form() {
        use vliw_ddg::kernels;
        let lat = LatencyModel::default();
        let m = Machine::single_cluster(6, 2, 32, lat);
        let lp = kernels::daxpy(lat, 1000);
        let r = modulo_schedule(&lp.ddg, &m, ImsOptions::default()).unwrap();
        for n in [1u64, 7, 100] {
            let run = simulate(&lp.ddg, &m, &r.schedule, n).unwrap();
            let ops = lp.ddg.num_ops() as u64 * n;
            let cycles = r.schedule.total_cycles(n);
            assert_eq!(run.measurement.dynamic_ipc, ops as f64 / cycles as f64);
        }
    }
}
