//! Measurements and the overall result of one simulation run.

use serde::{Deserialize, Serialize};

use crate::violation::SimViolation;

/// Cap on the number of [`SimViolation`]s recorded in detail per run; the total
/// count keeps accumulating past it.  A broken schedule violates the same
/// dependence once per iteration, so an uncapped list would be thousands of
/// copies of the same few defects.
pub const MAX_RECORDED_VIOLATIONS: usize = 64;

/// What one simulation run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMeasurement {
    /// Number of iterations executed.
    pub trip_count: u64,
    /// Exact number of cycles the execution spanned (through the end of the II
    /// window containing the last issue).
    pub total_cycles: u64,
    /// Total operation instances issued (`ops · trip_count`).
    pub issued_ops: u64,
    /// Instances issued while the pipeline was filling.
    pub prologue_issues: u64,
    /// Instances issued at steady state.
    pub kernel_issues: u64,
    /// Instances issued while the pipeline drained.
    pub epilogue_issues: u64,
    /// Copy-operation instances issued (the inter-queue replication traffic).
    pub copy_ops_issued: u64,
    /// Observed dynamic issue rate: `issued_ops / total_cycles`.
    pub dynamic_ipc: f64,
    /// Peak number of values simultaneously resident in each cluster's private
    /// QRF, indexed by cluster.
    pub peak_private_occupancy: Vec<usize>,
    /// Peak number of values simultaneously resident on each directed ring
    /// link, indexed like the engine's link table (empty for single-cluster
    /// machines).
    pub peak_comm_occupancy: Vec<usize>,
    /// Peak number of values simultaneously resident in each *physical* queue,
    /// indexed by the queue ids of the [`crate::engine::QueueMap`] the run was
    /// given; empty when the run had no queue map.  The execution-observed
    /// counterpart of the allocator's reported `queue_depths`.
    pub peak_queue_occupancy: Vec<usize>,
    /// Fraction of copy-unit issue slots actually used
    /// (`copy_ops_issued / (copy_units · total_cycles)`); 0 when the machine
    /// has no copy units or the execution spans no cycles.
    pub copy_bus_utilisation: f64,
}

impl SimMeasurement {
    /// The largest private-QRF peak occupancy over all clusters.
    pub fn max_private_peak(&self) -> usize {
        self.peak_private_occupancy.iter().copied().max().unwrap_or(0)
    }

    /// The largest communication-queue peak occupancy over all directed links.
    pub fn max_comm_peak(&self) -> usize {
        self.peak_comm_occupancy.iter().copied().max().unwrap_or(0)
    }
}

/// The result of simulating one schedule for one trip count: measurements plus
/// every violation the dynamic verifier observed.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun {
    /// What the run measured.
    pub measurement: SimMeasurement,
    /// The first [`MAX_RECORDED_VIOLATIONS`] violations, in observation order
    /// (cycle, then issue order within the cycle).
    pub violations: Vec<SimViolation>,
    /// Total schedule faults observed (dependence, FU, class, adjacency — see
    /// [`SimViolation::is_schedule_fault`]), including ones past the recording
    /// cap.
    pub schedule_faults: u64,
    /// Total capacity faults observed (private-QRF or ring-queue overflow),
    /// including ones past the recording cap.
    pub capacity_faults: u64,
}

impl SimRun {
    /// Total violations of both classes.
    pub fn total_violations(&self) -> u64 {
        self.schedule_faults + self.capacity_faults
    }

    /// True if the run completed without a single violation of any class.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// True if the schedule kept every promise it made — the dynamic
    /// counterpart of [`vliw_sched::Schedule::validate`] returning `Ok`.  The
    /// loop's values may still exceed the machine's queue budget
    /// (`capacity_faults > 0`), which is a property of the machine sizing, not
    /// of the schedule.
    pub fn schedule_is_sound(&self) -> bool {
        self.schedule_faults == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_over_empty_tables_are_zero() {
        let m = SimMeasurement {
            trip_count: 0,
            total_cycles: 0,
            issued_ops: 0,
            prologue_issues: 0,
            kernel_issues: 0,
            epilogue_issues: 0,
            copy_ops_issued: 0,
            dynamic_ipc: 0.0,
            peak_private_occupancy: vec![],
            peak_comm_occupancy: vec![],
            peak_queue_occupancy: vec![],
            copy_bus_utilisation: 0.0,
        };
        assert_eq!(m.max_private_peak(), 0);
        assert_eq!(m.max_comm_peak(), 0);
        let run =
            SimRun { measurement: m, violations: vec![], schedule_faults: 0, capacity_faults: 0 };
        assert!(run.is_clean());
        assert!(run.schedule_is_sound());
        assert_eq!(run.total_violations(), 0);
    }
}
