//! Expansion of a modulo schedule into its dynamic issue slots.
//!
//! A modulo schedule describes one iteration; running a loop of trip count `N`
//! overlaps `N` shifted copies of it, one initiated every II cycles.  The dynamic
//! execution has three phases (Section 2 of the paper):
//!
//! * **prologue** — the pipeline fills: fewer than `SC` iterations are in flight;
//! * **steady-state kernel** — exactly `SC` iterations are in flight and every II
//!   window issues all `ops` operations (only exists when `N ≥ SC`);
//! * **epilogue** — the pipeline drains after the last iteration entered.
//!
//! The helpers here are the pure arithmetic of that expansion; the
//! [`crate::engine`] steps it cycle by cycle with machine state attached.

use vliw_ddg::OpId;
use vliw_sched::Schedule;

/// Dynamic phase of one cycle of the expanded execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The pipeline is filling (fewer iterations in flight than stages).
    Prologue,
    /// Steady state: `SC` iterations in flight, full issue windows.
    Kernel,
    /// The pipeline is draining: every iteration has been initiated.
    Epilogue,
}

/// Total number of cycles the expanded execution of `trip_count` iterations
/// spans: the end of the II window containing the last issue.
///
/// Equal to `(SC − 1 + N) · II` — the closed form
/// [`Schedule::total_cycles`] asserts — for every `N ≥ 1`, including `N < SC`.
pub fn sim_total_cycles(schedule: &Schedule, trip_count: u64) -> u64 {
    if schedule.start.is_empty() || trip_count == 0 {
        return 0;
    }
    let ii = u64::from(schedule.ii);
    let max_start = u64::from(schedule.start.iter().copied().max().unwrap_or(0));
    (max_start / ii + trip_count) * ii
}

/// The phase of `cycle` in the expanded execution of `trip_count` iterations.
pub fn phase_of(schedule: &Schedule, trip_count: u64, cycle: u64) -> Phase {
    let ii = u64::from(schedule.ii);
    let window = cycle / ii;
    let sc = u64::from(schedule.stage_count());
    if window + 1 < sc && window < trip_count {
        Phase::Prologue
    } else if window < trip_count {
        Phase::Kernel
    } else {
        Phase::Epilogue
    }
}

/// The operation instances `(op, iteration)` issuing at `cycle`.
///
/// An instance `(i, k)` issues at `start(i) + k · II`; this scans the schedule
/// for the instances landing on `cycle`.  The engine uses per-slot index lists
/// instead of this O(ops) scan, and its expansion is cross-checked against this
/// reference by tests.
pub fn issues_at(schedule: &Schedule, trip_count: u64, cycle: u64) -> Vec<(OpId, u64)> {
    let ii = u64::from(schedule.ii);
    let mut out = Vec::new();
    for (i, &start) in schedule.start.iter().enumerate() {
        let start = u64::from(start);
        if cycle >= start && (cycle - start).is_multiple_of(ii) {
            let k = (cycle - start) / ii;
            if k < trip_count {
                out.push((OpId(i as u32), k));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_machine::FuId;

    fn sched(ii: u32, starts: Vec<u32>) -> Schedule {
        let n = starts.len();
        Schedule::new(ii, starts, vec![FuId(0); n])
    }

    #[test]
    fn total_cycles_matches_the_closed_form() {
        let s = sched(2, vec![0, 1, 2, 5]); // SC = 3
        for n in [0u64, 1, 2, 3, 10, 1000] {
            assert_eq!(sim_total_cycles(&s, n), s.total_cycles(n), "N = {n}");
        }
    }

    #[test]
    fn short_trip_counts_agree_with_the_closed_form_too() {
        // SC = 4 at II = 1: trip counts below the stage count still match.
        let s = sched(1, vec![0, 3]);
        for n in 1..=6u64 {
            assert_eq!(sim_total_cycles(&s, n), s.total_cycles(n));
        }
    }

    #[test]
    fn every_instance_issues_exactly_once() {
        let s = sched(2, vec![0, 1, 2, 5]);
        let n = 7u64;
        let mut seen = vec![0u64; 4];
        for c in 0..sim_total_cycles(&s, n) {
            for (op, k) in issues_at(&s, n, c) {
                assert!(k < n);
                assert_eq!(c, u64::from(s.start[op.index()]) + k * u64::from(s.ii));
                seen[op.index()] += 1;
            }
        }
        assert_eq!(seen, vec![n; 4], "each op issues once per iteration");
    }

    #[test]
    fn phases_partition_the_execution() {
        let s = sched(2, vec![0, 1, 2, 5]); // SC = 3
        let n = 10u64;
        let total = sim_total_cycles(&s, n);
        // Prologue: windows 0..SC-1; kernel: SC-1..N; epilogue: N..SC-1+N.
        for c in 0..total {
            let w = c / 2;
            let expected = if w < 2 {
                Phase::Prologue
            } else if w < 10 {
                Phase::Kernel
            } else {
                Phase::Epilogue
            };
            assert_eq!(phase_of(&s, n, c), expected, "cycle {c}");
        }
    }

    #[test]
    fn trip_counts_below_the_stage_count_never_reach_steady_state() {
        let s = sched(2, vec![0, 1, 2, 5]); // SC = 3
        let n = 2u64; // N < SC
        for c in 0..sim_total_cycles(&s, n) {
            assert_ne!(phase_of(&s, n, c), Phase::Kernel, "cycle {c}");
        }
    }

    #[test]
    fn kernel_windows_issue_every_operation() {
        let s = sched(3, vec![0, 2, 4, 7]); // SC = 3
        let n = 9u64;
        for w in 2..n {
            let issues: usize = (w * 3..(w + 1) * 3).map(|c| issues_at(&s, n, c).len()).sum();
            assert_eq!(issues, 4, "window {w} is a full kernel window");
        }
    }

    #[test]
    fn empty_or_zero_trip_executions_span_no_cycles() {
        let s = sched(2, vec![]);
        assert_eq!(sim_total_cycles(&s, 5), 0);
        let s = sched(2, vec![0, 1]);
        assert_eq!(sim_total_cycles(&s, 0), 0);
    }
}
