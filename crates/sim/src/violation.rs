//! Structured runtime violations reported by the simulator.

use std::fmt;

use vliw_ddg::OpId;
use vliw_machine::{ClusterId, FuId};

/// A violation observed while executing a schedule.
///
/// The static validator ([`vliw_sched::Schedule::validate`]) asserts these
/// properties from the schedule's arithmetic; the simulator observes them at run
/// time, so the two can be cross-checked against each other.  The queue and
/// adjacency variants have no static counterpart — they are constraints of the
/// machine's storage model that only an execution can check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimViolation {
    /// A consumer issued before the producing instance's result was ready.
    OperandNotReady {
        /// Producing operation.
        src: OpId,
        /// Consuming operation.
        dst: OpId,
        /// Iteration (0-based) of the consumer instance.
        iteration: u64,
        /// Cycle at which the consumer issued.
        cycle: u64,
        /// Cycle at which the operand becomes ready; `None` if the producing
        /// instance had not issued at all by `cycle`.
        ready_at: Option<u64>,
    },
    /// Two operation instances issued on the same functional unit in one cycle.
    FuConflict {
        /// Double-booked unit.
        fu: FuId,
        /// Cycle of the collision.
        cycle: u64,
        /// Operation that issued first.
        first: OpId,
        /// Operation that collided with it.
        second: OpId,
    },
    /// An operation executed on a functional unit of the wrong class.
    WrongFuClass {
        /// Operation.
        op: OpId,
        /// Assigned unit.
        fu: FuId,
    },
    /// A cluster's private queue register file held more values than its queues
    /// can store.
    PrivateQueueOverflow {
        /// Overflowing cluster.
        cluster: ClusterId,
        /// Cycle at which the capacity was first exceeded.
        cycle: u64,
        /// Number of values resident at that cycle.
        occupancy: usize,
        /// Capacity in values (`private_queues · queue_capacity`).
        capacity: usize,
    },
    /// A ring link's communication queues held more values than they can store.
    CommQueueOverflow {
        /// Producing cluster of the directed link.
        from: ClusterId,
        /// Consuming cluster of the directed link.
        to: ClusterId,
        /// Cycle at which the capacity was first exceeded.
        cycle: u64,
        /// Number of values resident at that cycle.
        occupancy: usize,
        /// Capacity in values (`queues_per_direction · queue_capacity`).
        capacity: usize,
    },
    /// A value flows between clusters that are not adjacent on the ring, for
    /// which the machine has no communication path (Section 4 of the paper).
    NonAdjacentCommunication {
        /// Producing operation.
        src: OpId,
        /// Consuming operation.
        dst: OpId,
        /// Producer's cluster.
        from: ClusterId,
        /// Consumer's cluster.
        to: ClusterId,
    },
}

impl SimViolation {
    /// True if the violation indicts the **schedule** — a dependence missed at
    /// run time, a double-booked or wrong-class unit, or a value placed on
    /// clusters with no communication path.  A statically valid schedule from
    /// either scheduler must never produce one of these.
    ///
    /// The queue-overflow variants are **capacity faults** instead: the
    /// schedule keeps every promise it made, but the loop's values exceed the
    /// machine's queue storage — the population Fig. 7's "fits the cluster
    /// budget" fraction measures.  The schedulers do not promise queue
    /// feasibility, so these are machine-sizing data, not schedule bugs.
    pub fn is_schedule_fault(&self) -> bool {
        !matches!(
            self,
            SimViolation::PrivateQueueOverflow { .. } | SimViolation::CommQueueOverflow { .. }
        )
    }
}

impl fmt::Display for SimViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimViolation::OperandNotReady { src, dst, iteration, cycle, ready_at } => {
                match ready_at {
                    Some(ready) => write!(
                        f,
                        "{dst} (iteration {iteration}) issued at cycle {cycle} but its \
                         operand from {src} is only ready at cycle {ready}"
                    ),
                    None => write!(
                        f,
                        "{dst} (iteration {iteration}) issued at cycle {cycle} before \
                         its producer {src} issued at all"
                    ),
                }
            }
            SimViolation::FuConflict { fu, cycle, first, second } => {
                write!(f, "{first} and {second} both issued on {fu} at cycle {cycle}")
            }
            SimViolation::WrongFuClass { op, fu } => {
                write!(f, "{op} executed on {fu} of the wrong class")
            }
            SimViolation::PrivateQueueOverflow { cluster, cycle, occupancy, capacity } => {
                write!(
                    f,
                    "{cluster} QRF held {occupancy} values at cycle {cycle}, \
                     capacity is {capacity}"
                )
            }
            SimViolation::CommQueueOverflow { from, to, cycle, occupancy, capacity } => {
                write!(
                    f,
                    "ring link {from} -> {to} held {occupancy} values at cycle {cycle}, \
                     capacity is {capacity}"
                )
            }
            SimViolation::NonAdjacentCommunication { src, dst, from, to } => {
                write!(
                    f,
                    "value {src} -> {dst} flows between non-adjacent clusters \
                     {from} -> {to}"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_the_actors() {
        let v = SimViolation::OperandNotReady {
            src: OpId(0),
            dst: OpId(1),
            iteration: 3,
            cycle: 7,
            ready_at: Some(9),
        };
        let s = v.to_string();
        assert!(s.contains("op0") && s.contains("op1") && s.contains('9'));
        let v = SimViolation::OperandNotReady {
            src: OpId(0),
            dst: OpId(1),
            iteration: 3,
            cycle: 7,
            ready_at: None,
        };
        assert!(v.to_string().contains("before"));
        let v = SimViolation::FuConflict { fu: FuId(2), cycle: 4, first: OpId(0), second: OpId(1) };
        assert!(v.to_string().contains("fu2"));
        let v = SimViolation::WrongFuClass { op: OpId(5), fu: FuId(0) };
        assert!(v.to_string().contains("op5"));
        let v = SimViolation::PrivateQueueOverflow {
            cluster: ClusterId(1),
            cycle: 2,
            occupancy: 65,
            capacity: 64,
        };
        assert!(v.to_string().contains("cluster1") && v.to_string().contains("65"));
        let v = SimViolation::CommQueueOverflow {
            from: ClusterId(0),
            to: ClusterId(1),
            cycle: 2,
            occupancy: 65,
            capacity: 64,
        };
        assert!(v.to_string().contains("ring link"));
        let v = SimViolation::NonAdjacentCommunication {
            src: OpId(0),
            dst: OpId(1),
            from: ClusterId(0),
            to: ClusterId(2),
        };
        assert!(v.to_string().contains("non-adjacent"));
    }
}
