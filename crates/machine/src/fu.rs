//! Functional units and their identities.

use std::fmt;

use vliw_ddg::OpClass;

/// Identifier of a cluster within a [`crate::Machine`].
///
/// Clusters are arranged on a bidirectional ring (Fig. 5b of the paper): cluster `i`
/// can exchange values with clusters `i − 1` and `i + 1` (modulo the cluster count)
/// through communication queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// Dense index of the cluster.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

/// Identifier of a functional unit within a [`crate::Machine`].
///
/// Functional-unit ids are dense across the whole machine (all clusters), in cluster
/// order, so they can index per-FU side tables such as the modulo reservation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuId(pub u32);

impl FuId {
    /// Dense index of the unit.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fu{}", self.0)
    }
}

/// A functional unit instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fu {
    /// Identifier of the unit.
    pub id: FuId,
    /// Class of operations the unit executes.
    pub class: OpClass,
    /// Cluster the unit belongs to.
    pub cluster: ClusterId,
}

impl Fu {
    /// Creates a functional unit descriptor.
    pub fn new(id: FuId, class: OpClass, cluster: ClusterId) -> Self {
        Fu { id, class, cluster }
    }

    /// True if this unit is a copy unit (it does not count towards the machine's
    /// "compute FU" total in the paper's terminology).
    #[inline]
    pub fn is_copy_unit(&self) -> bool {
        self.class == OpClass::Copy
    }
}

impl fmt::Display for Fu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, {})", self.id, self.class, self.cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_unit_detection() {
        let fu = Fu::new(FuId(0), OpClass::Copy, ClusterId(0));
        assert!(fu.is_copy_unit());
        let fu = Fu::new(FuId(1), OpClass::Adder, ClusterId(0));
        assert!(!fu.is_copy_unit());
    }

    #[test]
    fn ids_display_and_index() {
        assert_eq!(FuId(3).to_string(), "fu3");
        assert_eq!(FuId(3).index(), 3);
        assert_eq!(ClusterId(2).to_string(), "cluster2");
        assert_eq!(ClusterId(2).index(), 2);
    }

    #[test]
    fn fu_display_mentions_class_and_cluster() {
        let fu = Fu::new(FuId(5), OpClass::Multiplier, ClusterId(1));
        let s = fu.to_string();
        assert!(s.contains("fu5"));
        assert!(s.contains("MUL"));
        assert!(s.contains("cluster1"));
    }
}
