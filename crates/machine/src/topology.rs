//! Inter-cluster interconnect topologies of the design space.
//!
//! The paper's architecture connects its clusters with a bidirectional ring
//! (Fig. 5b); Section 4 notes the ring is a *choice*, not a consequence of the
//! queue model — any interconnect whose adjacency relation the partitioner can
//! consult would do, because the partitioning algorithm only ever asks "may a
//! value flow directly from cluster A to cluster B?".  This module is that
//! adjacency abstraction: a [`Topology`] answers the question for the
//! bidirectional ring, a 2-D torus and a full crossbar, which opens the
//! topology axis of the `figures sweep --grid huge` design space.
//!
//! Every topology reuses the ring's link sizing (`queues_per_direction` ×
//! `queue_capacity` per directed link): richer topologies buy reachability by
//! paying for more directed links, which the sweep's storage-bits cost axis
//! charges for.

/// The inter-cluster interconnect of a clustered machine.
///
/// Adjacency is what the partitioner, the simulator and the verifier consult
/// (all through [`crate::Machine::clusters_communicate`]); the number of
/// directed links is what the sweep's storage accounting charges for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Topology {
    /// The paper's bidirectional ring: each cluster talks to its two
    /// neighbours (Fig. 5b).
    #[default]
    Ring,
    /// A 2-D torus over the most square factorisation `rows × cols` of the
    /// cluster count (wrap-around in both dimensions).  Degenerates to the
    /// ring when the cluster count is prime (`1 × n`).
    Torus,
    /// A full crossbar: every cluster talks directly to every other.
    Crossbar,
}

impl Topology {
    /// Every topology of the design space, in sweep order.
    pub const ALL: [Topology; 3] = [Topology::Ring, Topology::Torus, Topology::Crossbar];

    /// Short name used in machine names, report rows and on the wire.
    pub fn tag(self) -> &'static str {
        match self {
            Topology::Ring => "ring",
            Topology::Torus => "torus",
            Topology::Crossbar => "xbar",
        }
    }

    /// True if a value may flow directly from cluster `a` to cluster `b` on an
    /// `n`-cluster machine of this topology (`a != b`; same-cluster flow never
    /// consults the interconnect).
    pub fn adjacent(self, a: usize, b: usize, n: usize) -> bool {
        if a == b || n <= 1 {
            return a == b;
        }
        match self {
            Topology::Ring => {
                let diff = (a + n - b) % n;
                diff == 1 || diff == n - 1
            }
            Topology::Torus => {
                let cols = n / torus_rows(n);
                let (ar, ac) = (a / cols, a % cols);
                let (br, bc) = (b / cols, b % cols);
                let ring1d = |x: usize, y: usize, m: usize| {
                    let diff = (x + m - y) % m;
                    diff == 1 || diff == m - 1
                };
                (ar == br && ring1d(ac, bc, cols)) || (ac == bc && ring1d(ar, br, torus_rows(n)))
            }
            Topology::Crossbar => true,
        }
    }

    /// Number of directed links of an `n`-cluster machine of this topology —
    /// the ordered adjacent pairs, each sized like one directed ring link.
    ///
    /// Counted by enumeration: cluster counts are tiny (≤ 16 in every grid),
    /// and one count per [`crate::MachineConfig::storage_bits`] call is free
    /// next to materialising the machine.
    pub fn directed_links(self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let mut links = 0;
        for a in 0..n {
            for b in 0..n {
                if a != b && self.adjacent(a, b, n) {
                    links += 1;
                }
            }
        }
        links
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

impl std::str::FromStr for Topology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ring" => Ok(Topology::Ring),
            "torus" => Ok(Topology::Torus),
            "xbar" => Ok(Topology::Crossbar),
            other => {
                Err(format!("unknown topology `{other}` (expected `ring`, `torus` or `xbar`)"))
            }
        }
    }
}

/// The row count of the most square `rows × cols` torus factorisation of `n`:
/// the largest divisor of `n` not exceeding `√n` (so `rows <= cols`).
pub fn torus_rows(n: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let mut rows = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_matches_the_paper_adjacency() {
        // 4 clusters: neighbours wrap, the diagonal does not communicate.
        let t = Topology::Ring;
        assert!(t.adjacent(0, 1, 4));
        assert!(t.adjacent(1, 0, 4));
        assert!(t.adjacent(0, 3, 4));
        assert!(!t.adjacent(0, 2, 4));
        assert_eq!(t.directed_links(4), 8);
        assert_eq!(t.directed_links(2), 2);
        assert_eq!(t.directed_links(1), 0);
    }

    #[test]
    fn torus_factorisation_is_most_square() {
        assert_eq!(torus_rows(4), 2);
        assert_eq!(torus_rows(6), 2);
        assert_eq!(torus_rows(8), 2);
        assert_eq!(torus_rows(9), 3);
        assert_eq!(torus_rows(12), 3);
        assert_eq!(torus_rows(16), 4);
        // Primes degenerate to a 1 × n ring.
        assert_eq!(torus_rows(5), 1);
        assert_eq!(torus_rows(7), 1);
    }

    #[test]
    fn torus_on_primes_equals_the_ring() {
        for n in [2usize, 3, 5, 7] {
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        Topology::Torus.adjacent(a, b, n),
                        Topology::Ring.adjacent(a, b, n),
                        "n={n} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_9_is_the_3x3_grid() {
        // Cluster 4 is the centre of the 3×3 torus: adjacent to 1, 7 (column)
        // and 3, 5 (row), not to the corners.
        let t = Topology::Torus;
        for b in [1usize, 3, 5, 7] {
            assert!(t.adjacent(4, b, 9), "centre to {b}");
        }
        for b in [0usize, 2, 6, 8] {
            assert!(!t.adjacent(4, b, 9), "centre to corner {b}");
        }
        // Every node of a 3×3 torus has 4 neighbours.
        assert_eq!(t.directed_links(9), 9 * 4);
    }

    #[test]
    fn crossbar_connects_everything() {
        let t = Topology::Crossbar;
        for a in 0..6 {
            for b in 0..6 {
                assert!(t.adjacent(a, b, 6));
            }
        }
        assert_eq!(t.directed_links(6), 30);
    }

    #[test]
    fn adjacency_is_symmetric() {
        for t in Topology::ALL {
            for n in 2..=16usize {
                for a in 0..n {
                    for b in 0..n {
                        assert_eq!(t.adjacent(a, b, n), t.adjacent(b, a, n), "{t} n={n}");
                    }
                }
            }
        }
    }

    #[test]
    fn link_counts_order_by_richness() {
        // The crossbar dominates the torus dominates (or equals) the ring.
        for n in 2..=16usize {
            let ring = Topology::Ring.directed_links(n);
            let torus = Topology::Torus.directed_links(n);
            let xbar = Topology::Crossbar.directed_links(n);
            assert!(ring <= torus, "n={n}");
            assert!(torus <= xbar, "n={n}");
            assert_eq!(xbar, n * (n - 1));
        }
    }

    #[test]
    fn names_round_trip() {
        for t in Topology::ALL {
            assert_eq!(t.tag().parse::<Topology>(), Ok(t));
            assert_eq!(format!("{t}"), t.tag());
        }
        assert!("mesh".parse::<Topology>().is_err());
        assert_eq!(Topology::default(), Topology::Ring);
    }
}
