//! The machine design space behind the Fig. 7 sizing sweep.
//!
//! Fig. 7 is a *sizing* claim: the paper settles on a basic cluster of 3 compute
//! FUs with 8 private queues of 8 entries, connected by ring links of 8
//! communication queues per direction, because that is the smallest clustered
//! configuration that still fits nearly all loops of the workload.  This module
//! parameterises that claim: a [`MachineSpace`] is a cartesian grid over cluster
//! count, queues per cluster, entries per queue, ring-link depth and FU mix, and
//! every grid point ([`MachineConfig`]) can be materialised both as the actual
//! machine (real storage budgets) and as a *probe* machine whose storage is
//! effectively unbounded.
//!
//! The probe machine is the memoisation lever of the sweep: scheduling and
//! simulation depend only on the machine *shape* (cluster count and FU mix) —
//! queue budgets constrain what fits, never where operations are placed — so
//! every grid point sharing a shape produces the identical probe machine, hence
//! the identical compilation-session key, and the whole storage sub-grid reuses
//! one compile and one simulation per loop.

use vliw_ddg::{LatencyModel, OpClass};

use crate::cluster::{ClusterConfig, RingConfig};
use crate::machine::Machine;
use crate::topology::Topology;

/// Storage cost of one queue entry, in bits (one 32-bit value).  Used for the
/// sweep's storage axis; only ratios matter for the Pareto analysis.
pub const VALUE_BITS: u64 = 32;

/// Queue count/capacity of the probe machines: large enough that no synthetic
/// loop ever touches the budget, so probe runs measure demand instead of
/// clipping it.
const PROBE_STORAGE: usize = 1024;

/// Functional-unit mix of one cluster of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuMix {
    /// The paper's basic cluster: 1 L/S + 1 ADD + 1 MUL (plus one copy unit).
    Basic,
    /// A double-width cluster: 2 L/S + 2 ADD + 2 MUL (plus one copy unit).
    Wide,
}

impl FuMix {
    /// Every mix of the design space.
    pub const ALL: [FuMix; 2] = [FuMix::Basic, FuMix::Wide];

    /// Short name used in machine names and report rows.
    pub fn tag(self) -> &'static str {
        match self {
            FuMix::Basic => "basic",
            FuMix::Wide => "wide",
        }
    }

    /// The compute units of one cluster with this mix.
    pub fn classes(self) -> Vec<OpClass> {
        let per_class = match self {
            FuMix::Basic => 1,
            FuMix::Wide => 2,
        };
        let mut classes = Vec::with_capacity(3 * per_class);
        for class in [OpClass::Memory, OpClass::Adder, OpClass::Multiplier] {
            classes.extend(std::iter::repeat_n(class, per_class));
        }
        classes
    }

    /// Number of compute FUs per cluster.
    pub fn compute_fus(self) -> usize {
        self.classes().len()
    }
}

/// One grid point of the design space: a complete clustered-machine sizing.
///
/// `queues_per_cluster` sizes both the private QRF and the ring links (the
/// paper's 8 private + 8 + 8 communication queues tie the two counts together);
/// `queue_capacity` is the depth of a private queue and `link_depth` the depth
/// of a communication queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Number of clusters on the ring.
    pub clusters: usize,
    /// Queues in each cluster's private QRF, and communication queues per
    /// directed ring link.
    pub queues_per_cluster: usize,
    /// Entries per private queue.
    pub queue_capacity: usize,
    /// Entries per ring communication queue.
    pub link_depth: usize,
    /// Compute-unit mix of every cluster.
    pub fu_mix: FuMix,
    /// Inter-cluster interconnect (the paper's machines are all
    /// [`Topology::Ring`]; the huge grid opens the axis).
    pub topology: Topology,
}

impl MachineConfig {
    /// The scheduling-relevant shape of this configuration: everything the
    /// compiler and simulator can observe.  Grid points sharing a shape share
    /// one probe machine, hence one compilation-session key.  The topology is
    /// part of the shape — it changes which clusters may communicate, hence
    /// where the partitioner places operations.
    pub fn shape(&self) -> (usize, FuMix, Topology) {
        (self.clusters, self.fu_mix, self.topology)
    }

    /// Machine-name suffix of the topology: empty for the paper's ring (so
    /// every pre-topology machine name — and with it every persisted
    /// compilation key and committed baseline — stays byte-identical), the
    /// topology tag otherwise.
    fn topology_suffix(&self) -> String {
        match self.topology {
            Topology::Ring => String::new(),
            t => format!("-{}", t.tag()),
        }
    }

    /// The machine with this configuration's actual storage budgets.
    pub fn machine(&self, latencies: LatencyModel) -> Machine {
        let cluster = ClusterConfig {
            fu_classes: self.fu_mix.classes(),
            copy_units: 1,
            private_queues: self.queues_per_cluster,
            queue_capacity: self.queue_capacity,
        };
        let ring = (self.clusters > 1).then_some(RingConfig {
            queues_per_direction: self.queues_per_cluster,
            queue_capacity: self.link_depth,
        });
        Machine::new(
            format!(
                "sweep-{}x{}fu-{}-q{}c{}d{}{}",
                self.clusters,
                self.fu_mix.compute_fus(),
                self.fu_mix.tag(),
                self.queues_per_cluster,
                self.queue_capacity,
                self.link_depth,
                self.topology_suffix()
            ),
            vec![cluster; self.clusters],
            ring,
            latencies,
        )
        .with_topology(self.topology)
    }

    /// The probe machine of this configuration's shape: identical FU structure,
    /// storage budgets so large no loop ever reaches them.  Identical for every
    /// grid point with the same [`MachineConfig::shape`], including the name —
    /// the property the sweep's memoisation rests on.
    pub fn probe_machine(&self, latencies: LatencyModel) -> Machine {
        let cluster = ClusterConfig {
            fu_classes: self.fu_mix.classes(),
            copy_units: 1,
            private_queues: PROBE_STORAGE,
            queue_capacity: PROBE_STORAGE,
        };
        let ring = (self.clusters > 1).then_some(RingConfig {
            queues_per_direction: PROBE_STORAGE,
            queue_capacity: PROBE_STORAGE,
        });
        Machine::new(
            format!(
                "sweep-probe-{}x{}fu-{}{}",
                self.clusters,
                self.fu_mix.compute_fus(),
                self.fu_mix.tag(),
                self.topology_suffix()
            ),
            vec![cluster; self.clusters],
            ring,
            latencies,
        )
        .with_topology(self.topology)
    }

    /// Number of directed interconnect links (each sized `queues_per_cluster ×
    /// link_depth`).  On the ring: two clusters share one physical pair of
    /// links, three or more have two outgoing links per cluster; richer
    /// topologies pay for more links (see [`Topology::directed_links`]).
    pub fn directed_links(&self) -> usize {
        self.topology.directed_links(self.clusters)
    }

    /// Total queue storage of the configuration in bits — the cost axis of the
    /// sweep's Pareto analysis.
    pub fn storage_bits(&self) -> u64 {
        let private = (self.clusters * self.queues_per_cluster * self.queue_capacity) as u64;
        let comm = (self.directed_links() * self.queues_per_cluster * self.link_depth) as u64;
        (private + comm) * VALUE_BITS
    }

    /// True for the paper's published sizing: 8 queues × 8 entries per cluster
    /// with depth-8 ring links on the basic cluster (Fig. 7).
    pub fn is_paper_point(&self) -> bool {
        self.queues_per_cluster == 8
            && self.queue_capacity == 8
            && self.link_depth == 8
            && self.fu_mix == FuMix::Basic
            && self.topology == Topology::Ring
    }
}

/// A cartesian grid of [`MachineConfig`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpace {
    /// Cluster counts to sweep.
    pub cluster_counts: Vec<usize>,
    /// Queue counts (private queues per cluster = ring queues per direction).
    pub queues_per_cluster: Vec<usize>,
    /// Private-queue depths.
    pub queue_capacities: Vec<usize>,
    /// Ring-queue depths.
    pub link_depths: Vec<usize>,
    /// Cluster FU mixes.
    pub fu_mixes: Vec<FuMix>,
    /// Interconnect topologies.
    pub topologies: Vec<Topology>,
}

impl MachineSpace {
    /// The CI-sized grid: the 4-cluster basic machine with queue counts, queue
    /// depths and link depths each swept over {4, 8} — 8 configurations, one
    /// machine shape, paper point included.
    pub fn small() -> Self {
        MachineSpace {
            cluster_counts: vec![4],
            queues_per_cluster: vec![4, 8],
            queue_capacities: vec![4, 8],
            link_depths: vec![4, 8],
            fu_mixes: vec![FuMix::Basic],
            topologies: vec![Topology::Ring],
        }
    }

    /// The paper's Fig. 7 neighbourhood: its 4/5/6-cluster basic machines with
    /// every storage dimension swept over {2, 4, 8, 16} — 192 configurations,
    /// three machine shapes.
    pub fn paper() -> Self {
        MachineSpace {
            cluster_counts: vec![4, 5, 6],
            queues_per_cluster: vec![2, 4, 8, 16],
            queue_capacities: vec![2, 4, 8, 16],
            link_depths: vec![2, 4, 8, 16],
            fu_mixes: vec![FuMix::Basic],
            topologies: vec![Topology::Ring],
        }
    }

    /// The exploratory grid: 2–8 clusters, both FU mixes, storage dimensions up
    /// to 32 — 1200 configurations, twelve machine shapes.
    pub fn full() -> Self {
        MachineSpace {
            cluster_counts: vec![2, 3, 4, 5, 6, 8],
            queues_per_cluster: vec![2, 4, 8, 16, 32],
            queue_capacities: vec![2, 4, 8, 16, 32],
            link_depths: vec![2, 4, 8, 16],
            fu_mixes: vec![FuMix::Basic, FuMix::Wide],
            topologies: vec![Topology::Ring],
        }
    }

    /// The huge grid behind the bound-pruned sweep: 10 cluster counts up to 16,
    /// both FU mixes, all three topologies, and twelve values per storage
    /// dimension — 103 680 configurations over 60 machine shapes.  Enumerating
    /// it is cheap; *classifying* it is what `vliw-bounds` makes affordable
    /// (one witness compile per shape and loop, every other grid point served
    /// by a certificate).
    pub fn huge() -> Self {
        let storage_axis = vec![1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32];
        MachineSpace {
            cluster_counts: vec![2, 3, 4, 5, 6, 8, 9, 10, 12, 16],
            queues_per_cluster: storage_axis.clone(),
            queue_capacities: storage_axis.clone(),
            link_depths: storage_axis,
            fu_mixes: vec![FuMix::Basic, FuMix::Wide],
            topologies: vec![Topology::Ring, Topology::Torus, Topology::Crossbar],
        }
    }

    /// Every grid point, in deterministic order (clusters, then mix, then
    /// topology, then queues, then capacity, then link depth) — configurations
    /// sharing a machine shape are contiguous, so the session cache warms once
    /// per shape.
    pub fn configs(&self) -> Vec<MachineConfig> {
        let mut out = Vec::with_capacity(self.num_configs());
        for &clusters in &self.cluster_counts {
            for &fu_mix in &self.fu_mixes {
                for &topology in &self.topologies {
                    for &queues_per_cluster in &self.queues_per_cluster {
                        for &queue_capacity in &self.queue_capacities {
                            for &link_depth in &self.link_depths {
                                out.push(MachineConfig {
                                    clusters,
                                    queues_per_cluster,
                                    queue_capacity,
                                    link_depth,
                                    fu_mix,
                                    topology,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of grid points.
    pub fn num_configs(&self) -> usize {
        self.cluster_counts.len()
            * self.queues_per_cluster.len()
            * self.queue_capacities.len()
            * self.link_depths.len()
            * self.fu_mixes.len()
            * self.topologies.len()
    }

    /// Number of distinct machine shapes (probe machines) in the grid — the
    /// number of compiles the memo store pays for, regardless of grid size.
    pub fn num_shapes(&self) -> usize {
        self.cluster_counts.len() * self.fu_mixes.len() * self.topologies.len()
    }
}

/// A named preset of the design space, selectable as `figures sweep --grid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepGrid {
    /// [`MachineSpace::small`].
    #[default]
    Small,
    /// [`MachineSpace::paper`].
    Paper,
    /// [`MachineSpace::full`].
    Full,
    /// [`MachineSpace::huge`] — the 100k-config grid the bound-pruned sweep
    /// exists for.
    Huge,
}

impl SweepGrid {
    /// The grid's name, as written on the command line and in reports.
    pub fn name(self) -> &'static str {
        match self {
            SweepGrid::Small => "small",
            SweepGrid::Paper => "paper",
            SweepGrid::Full => "full",
            SweepGrid::Huge => "huge",
        }
    }

    /// Materialises the preset.
    pub fn space(self) -> MachineSpace {
        match self {
            SweepGrid::Small => MachineSpace::small(),
            SweepGrid::Paper => MachineSpace::paper(),
            SweepGrid::Full => MachineSpace::full(),
            SweepGrid::Huge => MachineSpace::huge(),
        }
    }
}

impl std::str::FromStr for SweepGrid {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "small" => Ok(SweepGrid::Small),
            "paper" => Ok(SweepGrid::Paper),
            "full" => Ok(SweepGrid::Full),
            "huge" => Ok(SweepGrid::Huge),
            other => {
                Err(format!("unknown grid `{other}` (expected `small`, `paper`, `full` or `huge`)"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_point_in(space: &MachineSpace) -> Option<MachineConfig> {
        space.configs().into_iter().find(MachineConfig::is_paper_point)
    }

    #[test]
    fn grid_sizes_match_the_cartesian_product() {
        for space in [
            MachineSpace::small(),
            MachineSpace::paper(),
            MachineSpace::full(),
            MachineSpace::huge(),
        ] {
            let configs = space.configs();
            assert_eq!(configs.len(), space.num_configs());
            let mut shapes: Vec<_> = configs.iter().map(|c| c.shape()).collect();
            shapes.sort_by_key(|&(n, m, t)| (n, m.tag(), t.tag()));
            shapes.dedup();
            assert_eq!(shapes.len(), space.num_shapes());
        }
        assert_eq!(MachineSpace::small().num_configs(), 8);
        assert_eq!(MachineSpace::paper().num_configs(), 192);
        assert_eq!(MachineSpace::full().num_configs(), 1200);
        // The huge grid is the 100k-config acceptance bar of the pruned sweep.
        assert!(MachineSpace::huge().num_configs() >= 100_000);
        assert_eq!(MachineSpace::huge().num_shapes(), 60);
    }

    #[test]
    fn every_preset_contains_the_paper_point() {
        for space in [
            MachineSpace::small(),
            MachineSpace::paper(),
            MachineSpace::full(),
            MachineSpace::huge(),
        ] {
            let p = paper_point_in(&space).expect("paper point in grid");
            assert_eq!(
                (p.queues_per_cluster, p.queue_capacity, p.link_depth),
                (8, 8, 8),
                "Fig. 7's 8×8 + depth-8 links"
            );
        }
    }

    #[test]
    fn real_machine_carries_the_configured_budgets() {
        let config = MachineConfig {
            clusters: 4,
            queues_per_cluster: 8,
            queue_capacity: 8,
            link_depth: 8,
            fu_mix: FuMix::Basic,
            topology: Topology::Ring,
        };
        let m = config.machine(LatencyModel::default());
        assert_eq!(m.num_clusters(), 4);
        assert_eq!(m.num_compute_fus(), 12);
        for c in m.cluster_ids() {
            assert_eq!(m.cluster(c).private_queues, 8);
            assert_eq!(m.cluster(c).queue_capacity, 8);
        }
        let ring = m.ring().expect("clustered");
        assert_eq!(ring.queues_per_direction, 8);
        assert_eq!(ring.queue_capacity, 8);
        // The paper point materialises the same storage shape as
        // `Machine::paper_clustered` (only the name differs).
        let paper = Machine::paper_clustered(4, LatencyModel::default());
        assert_eq!(m.cluster(crate::ClusterId(0)), paper.cluster(crate::ClusterId(0)));
        assert_eq!(m.ring(), paper.ring());
    }

    #[test]
    fn probe_machines_are_identical_across_a_storage_subgrid() {
        let space = MachineSpace::small();
        let probes: Vec<Machine> =
            space.configs().iter().map(|c| c.probe_machine(LatencyModel::default())).collect();
        for probe in &probes[1..] {
            assert_eq!(probe, &probes[0], "one shape must produce one probe machine");
        }
        // ...and a different shape produces a different probe.
        let other = MachineConfig {
            clusters: 5,
            queues_per_cluster: 8,
            queue_capacity: 8,
            link_depth: 8,
            fu_mix: FuMix::Basic,
            topology: Topology::Ring,
        };
        assert_ne!(other.probe_machine(LatencyModel::default()), probes[0]);
    }

    #[test]
    fn storage_bits_scale_with_every_dimension() {
        let base = MachineConfig {
            clusters: 4,
            queues_per_cluster: 8,
            queue_capacity: 8,
            link_depth: 8,
            fu_mix: FuMix::Basic,
            topology: Topology::Ring,
        };
        // 4 clusters × 8×8 private + 8 directed links × 8×8 comm = 768 values.
        assert_eq!(base.storage_bits(), 768 * VALUE_BITS);
        let grow = |f: &dyn Fn(&mut MachineConfig)| {
            let mut c = base;
            f(&mut c);
            c
        };
        assert!(grow(&|c| c.clusters = 5).storage_bits() > base.storage_bits());
        assert!(grow(&|c| c.queues_per_cluster = 16).storage_bits() > base.storage_bits());
        assert!(grow(&|c| c.queue_capacity = 16).storage_bits() > base.storage_bits());
        assert!(grow(&|c| c.link_depth = 16).storage_bits() > base.storage_bits());
    }

    #[test]
    fn two_cluster_rings_have_two_directed_links() {
        let mut c = MachineConfig {
            clusters: 2,
            queues_per_cluster: 8,
            queue_capacity: 8,
            link_depth: 8,
            fu_mix: FuMix::Basic,
            topology: Topology::Ring,
        };
        assert_eq!(c.directed_links(), 2);
        c.clusters = 6;
        assert_eq!(c.directed_links(), 12);
        c.clusters = 1;
        assert_eq!(c.directed_links(), 0);
    }

    #[test]
    fn wide_mix_doubles_the_compute_units() {
        assert_eq!(FuMix::Basic.compute_fus(), 3);
        assert_eq!(FuMix::Wide.compute_fus(), 6);
        let config = MachineConfig {
            clusters: 3,
            queues_per_cluster: 8,
            queue_capacity: 8,
            link_depth: 8,
            fu_mix: FuMix::Wide,
            topology: Topology::Ring,
        };
        let m = config.machine(LatencyModel::default());
        assert_eq!(m.num_compute_fus(), 18);
        assert!(!config.is_paper_point(), "the paper cluster is the basic mix");
    }

    #[test]
    fn sweep_grid_names_round_trip() {
        for grid in [SweepGrid::Small, SweepGrid::Paper, SweepGrid::Full, SweepGrid::Huge] {
            assert_eq!(grid.name().parse::<SweepGrid>(), Ok(grid));
        }
        assert!("tiny".parse::<SweepGrid>().is_err());
        assert_eq!(SweepGrid::default(), SweepGrid::Small);
    }

    #[test]
    fn topology_is_part_of_the_shape_and_the_name() {
        let ring = MachineConfig {
            clusters: 4,
            queues_per_cluster: 8,
            queue_capacity: 8,
            link_depth: 8,
            fu_mix: FuMix::Basic,
            topology: Topology::Ring,
        };
        let torus = MachineConfig { topology: Topology::Torus, ..ring };
        let xbar = MachineConfig { topology: Topology::Crossbar, ..ring };
        assert_ne!(ring.shape(), torus.shape());
        assert_ne!(torus.shape(), xbar.shape());
        // Ring names stay byte-identical to the pre-topology scheme; the new
        // topologies tag themselves.
        let lat = LatencyModel::default;
        assert_eq!(ring.machine(lat()).name(), "sweep-4x3fu-basic-q8c8d8");
        assert_eq!(ring.probe_machine(lat()).name(), "sweep-probe-4x3fu-basic");
        assert_eq!(torus.machine(lat()).name(), "sweep-4x3fu-basic-q8c8d8-torus");
        assert_eq!(torus.probe_machine(lat()).name(), "sweep-probe-4x3fu-basic-torus");
        assert_eq!(xbar.probe_machine(lat()).name(), "sweep-probe-4x3fu-basic-xbar");
        // Distinct probe machines mean distinct compilation-session keys.
        assert_ne!(torus.probe_machine(lat()), ring.probe_machine(lat()));
        assert_eq!(torus.probe_machine(lat()).topology(), Topology::Torus);
        // The paper's published point is a ring machine by definition.
        assert!(ring.is_paper_point());
        assert!(!torus.is_paper_point());
        assert!(!xbar.is_paper_point());
    }

    #[test]
    fn richer_topologies_cost_more_storage() {
        let base = MachineConfig {
            clusters: 6,
            queues_per_cluster: 8,
            queue_capacity: 8,
            link_depth: 8,
            fu_mix: FuMix::Basic,
            topology: Topology::Ring,
        };
        let torus = MachineConfig { topology: Topology::Torus, ..base };
        let xbar = MachineConfig { topology: Topology::Crossbar, ..base };
        assert!(base.storage_bits() <= torus.storage_bits());
        assert!(torus.storage_bits() < xbar.storage_bits());
        assert_eq!(xbar.directed_links(), 30);
    }
}
