//! Machine model for the clustered VLIW architecture of Fernandes, Llosa & Topham
//! (IPPS 1998).
//!
//! The model describes:
//!
//! * **Functional units** grouped into **clusters** — the paper's basic cluster has
//!   one load/store unit, one adder, one multiplier and a dedicated copy unit
//!   (Fig. 5a);
//! * **Queue register files (QRFs)** — each cluster owns a small private QRF
//!   (8 queues in the paper's final configuration, Fig. 7);
//! * the **bidirectional ring** of communication queues connecting adjacent clusters
//!   (Fig. 5b), through which all inter-cluster data transfers flow;
//! * per-opcode **latencies** (re-exported from `vliw-ddg`).
//!
//! The model is analytical: it provides the resource counts and adjacency relations
//! the scheduler, the queue allocator and the partitioner need, matching the
//! schedule-level abstraction at which the paper evaluates the architecture.
//!
//! ```
//! use vliw_machine::Machine;
//! use vliw_ddg::LatencyModel;
//!
//! let clustered = Machine::paper_clustered(4, LatencyModel::default());
//! assert_eq!(clustered.num_compute_fus(), 12);
//! let baseline = Machine::paper_single_cluster_equivalent(4, LatencyModel::default());
//! assert_eq!(baseline.num_compute_fus(), 12);
//! ```

pub mod cluster;
pub mod fu;
// The module is named after the crate's central type on purpose; renaming
// either side would only add stutter at every use site.
#[allow(clippy::module_inception)]
pub mod machine;
pub mod space;
pub mod topology;

pub use cluster::{ClusterConfig, RingConfig};
pub use fu::{ClusterId, Fu, FuId};
pub use machine::{copy_units_for, Machine};
pub use space::{FuMix, MachineConfig, MachineSpace, SweepGrid, VALUE_BITS};
pub use topology::{torus_rows, Topology};

// Re-export the latency model so downstream crates need not depend on vliw-ddg just
// to configure a machine.
pub use vliw_ddg::LatencyModel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_machines() {
        let clustered = Machine::paper_clustered(4, LatencyModel::default());
        assert_eq!(clustered.num_compute_fus(), 12);
        let baseline = Machine::paper_single_cluster_equivalent(4, LatencyModel::default());
        assert_eq!(baseline.num_compute_fus(), 12);
    }
}
