//! The machine model: a set of clusters, their functional units, their queue
//! register files and the inter-cluster ring.

use vliw_ddg::{LatencyModel, OpClass};

use crate::cluster::{ClusterConfig, RingConfig};
use crate::fu::{ClusterId, Fu, FuId};
use crate::topology::Topology;

/// A complete VLIW machine configuration.
///
/// A machine is either *single-cluster* (one cluster holding all functional units and
/// one register file, possibly very wide — the paper's baseline) or *clustered*
/// (several identical clusters connected by a bidirectional ring of communication
/// queues — the paper's proposal).
#[derive(Debug, Clone)]
pub struct Machine {
    name: String,
    clusters: Vec<ClusterConfig>,
    ring: Option<RingConfig>,
    /// Inter-cluster interconnect consulted by [`Machine::clusters_communicate`].
    /// Every topology reuses the ring's per-link sizing (`ring`); the paper's
    /// machines are all [`Topology::Ring`].
    topology: Topology,
    fus: Vec<Fu>,
    latencies: LatencyModel,
    /// Unit ids of each class machine-wide, ascending; indexed by [`OpClass::index`].
    /// Built once at construction so the schedulers' inner loops (MRT probes, victim
    /// selection) touch only candidate units instead of filtering the full FU list.
    class_index: Vec<Vec<FuId>>,
    /// Unit ids of each (cluster, class) pair, ascending; indexed by
    /// `cluster · OpClass::COUNT + class`.
    cluster_class_index: Vec<Vec<FuId>>,
    /// `u64` words per FU bitmask (`⌈num_fus / 64⌉`).
    fu_mask_words: usize,
    /// Bitmask form of [`Machine::fu_ids_of_class`]: bit `fu.index()` of word
    /// `fu.index() / 64`, one `fu_mask_words`-wide row per class.  The MRT's
    /// word-parallel `free_fu` ANDs these against its per-slot busy words.
    class_mask: Vec<u64>,
    /// Bitmask form of [`Machine::fu_ids_of_class_in_cluster`], one row per
    /// `cluster · OpClass::COUNT + class`.
    cluster_class_mask: Vec<u64>,
}

// Equality and hashing deliberately skip the index and mask tables: they are
// pure functions of `fus`, and `Machine` is hashed on every compilation-session
// key lookup — hashing the caches would triple the FuId traffic for zero added
// discrimination.
impl PartialEq for Machine {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.clusters == other.clusters
            && self.ring == other.ring
            && self.topology == other.topology
            && self.fus == other.fus
            && self.latencies == other.latencies
    }
}

impl Eq for Machine {}

impl std::hash::Hash for Machine {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        self.clusters.hash(state);
        self.ring.hash(state);
        self.topology.hash(state);
        self.fus.hash(state);
        self.latencies.hash(state);
    }
}

impl Machine {
    /// Builds a machine from explicit cluster configurations.
    ///
    /// `ring` must be `Some` when there is more than one cluster.
    pub fn new(
        name: impl Into<String>,
        clusters: Vec<ClusterConfig>,
        ring: Option<RingConfig>,
        latencies: LatencyModel,
    ) -> Self {
        assert!(!clusters.is_empty(), "a machine needs at least one cluster");
        assert!(
            clusters.len() == 1 || ring.is_some(),
            "a clustered machine needs a ring configuration"
        );
        let mut fus = Vec::new();
        for (ci, cluster) in clusters.iter().enumerate() {
            let cid = ClusterId(ci as u32);
            for &class in &cluster.fu_classes {
                fus.push(Fu::new(FuId(fus.len() as u32), class, cid));
            }
            for _ in 0..cluster.copy_units {
                fus.push(Fu::new(FuId(fus.len() as u32), OpClass::Copy, cid));
            }
        }
        let mut class_index = vec![Vec::new(); OpClass::COUNT];
        let mut cluster_class_index = vec![Vec::new(); clusters.len() * OpClass::COUNT];
        let fu_mask_words = fus.len().div_ceil(64);
        let mut class_mask = vec![0u64; OpClass::COUNT * fu_mask_words];
        let mut cluster_class_mask = vec![0u64; clusters.len() * OpClass::COUNT * fu_mask_words];
        for fu in &fus {
            let cc = fu.cluster.index() * OpClass::COUNT + fu.class.index();
            class_index[fu.class.index()].push(fu.id);
            cluster_class_index[cc].push(fu.id);
            let (w, b) = (fu.id.index() / 64, fu.id.index() % 64);
            class_mask[fu.class.index() * fu_mask_words + w] |= 1 << b;
            cluster_class_mask[cc * fu_mask_words + w] |= 1 << b;
        }
        Machine {
            name: name.into(),
            clusters,
            ring,
            topology: Topology::Ring,
            fus,
            latencies,
            class_index,
            cluster_class_index,
            fu_mask_words,
            class_mask,
            cluster_class_mask,
        }
    }

    /// A single-cluster machine with `num_compute_fus` compute units split evenly
    /// between L/S, ADD and MUL, `copy_units` copy units and `queues` private queues.
    ///
    /// This is the configuration used for the 4/6/12-FU experiments of Sections 2
    /// and 3 and for the single-cluster curves of Figs. 8 and 9.
    pub fn single_cluster(
        num_compute_fus: usize,
        copy_units: usize,
        queues: usize,
        latencies: LatencyModel,
    ) -> Self {
        let cluster = ClusterConfig {
            queue_capacity: 8,
            ..ClusterConfig::balanced(num_compute_fus, copy_units, queues)
        };
        Machine::new(format!("single-{num_compute_fus}fu"), vec![cluster], None, latencies)
    }

    /// The single-cluster machine the paper's Sections 2 and 3 experiments run on:
    /// `fus` compute units split evenly between L/S, ADD and MUL, one copy unit per
    /// paper cluster (see [`copy_units_for`]), an effectively unbounded QRF (1024
    /// queues, so queue demand can be *measured* rather than constrained) and the
    /// default latency model.
    pub fn paper_single(fus: usize) -> Self {
        Machine::single_cluster(fus, copy_units_for(fus), 1024, LatencyModel::default())
    }

    /// The paper's clustered machine: `n_clusters` copies of the basic cluster
    /// (1 L/S + 1 ADD + 1 MUL + 1 copy unit, 8 private queues) connected by the
    /// 8-queues-per-direction ring (Figs. 5 and 7).
    pub fn paper_clustered(n_clusters: usize, latencies: LatencyModel) -> Self {
        assert!(n_clusters >= 1);
        let clusters = vec![ClusterConfig::paper_basic(); n_clusters];
        let ring = if n_clusters > 1 { Some(RingConfig::paper_basic()) } else { None };
        Machine::new(format!("clustered-{n_clusters}x3fu"), clusters, ring, latencies)
    }

    /// The single-cluster machine equivalent in total compute width to
    /// [`Machine::paper_clustered`] with the same number of clusters: `3 · n_clusters`
    /// compute FUs and a single large register file.  Used as the baseline of Fig. 6.
    pub fn paper_single_cluster_equivalent(n_clusters: usize, latencies: LatencyModel) -> Self {
        let mut m = Machine::single_cluster(3 * n_clusters, n_clusters, 32, latencies);
        m.name = format!("single-{}fu-equiv", 3 * n_clusters);
        m
    }

    /// Replaces the inter-cluster interconnect (the default is the paper's
    /// bidirectional ring).  The per-link sizing stays whatever `ring` holds:
    /// a torus or crossbar machine pays for more directed links of the same
    /// width, which the design-space storage accounting charges for.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// The inter-cluster interconnect.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Machine name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The latency model of the machine.
    pub fn latencies(&self) -> &LatencyModel {
        &self.latencies
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// True if the machine has more than one cluster.
    pub fn is_clustered(&self) -> bool {
        self.clusters.len() > 1
    }

    /// The ring configuration, if the machine is clustered.
    pub fn ring(&self) -> Option<&RingConfig> {
        self.ring.as_ref()
    }

    /// Configuration of cluster `c`.
    pub fn cluster(&self, c: ClusterId) -> &ClusterConfig {
        &self.clusters[c.index()]
    }

    /// Iterator over all cluster ids.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> + 'static {
        (0..self.clusters.len() as u32).map(ClusterId)
    }

    /// All functional units of the machine, including copy units.
    pub fn fus(&self) -> &[Fu] {
        &self.fus
    }

    /// Total number of functional units, including copy units.
    pub fn num_fus(&self) -> usize {
        self.fus.len()
    }

    /// Total number of compute functional units (excluding copy units) — the number
    /// the paper quotes as the machine's width ("12 FUs", "15 FUs", ...).
    pub fn num_compute_fus(&self) -> usize {
        self.fus.iter().filter(|fu| !fu.is_copy_unit()).count()
    }

    /// The functional unit with the given id.
    pub fn fu(&self, id: FuId) -> &Fu {
        &self.fus[id.index()]
    }

    /// Functional units of a given class across the whole machine.
    pub fn fus_of_class(&self, class: OpClass) -> impl Iterator<Item = &Fu> + '_ {
        self.fu_ids_of_class(class).iter().map(move |&id| self.fu(id))
    }

    /// Number of functional units of a given class across the whole machine.
    pub fn num_fus_of_class(&self, class: OpClass) -> usize {
        self.fu_ids_of_class(class).len()
    }

    /// Functional units of a given class inside one cluster.
    pub fn fus_of_class_in_cluster(
        &self,
        cluster: ClusterId,
        class: OpClass,
    ) -> impl Iterator<Item = &Fu> + '_ {
        self.fu_ids_of_class_in_cluster(cluster, class).iter().map(move |&id| self.fu(id))
    }

    /// Unit ids of a given class across the whole machine, in ascending id order —
    /// the pre-built index the schedulers' placement loops probe.
    #[inline]
    pub fn fu_ids_of_class(&self, class: OpClass) -> &[FuId] {
        &self.class_index[class.index()]
    }

    /// Unit ids of a given class inside one cluster, in ascending id order.
    #[inline]
    pub fn fu_ids_of_class_in_cluster(&self, cluster: ClusterId, class: OpClass) -> &[FuId] {
        &self.cluster_class_index[cluster.index() * OpClass::COUNT + class.index()]
    }

    /// `u64` words per FU bitmask row (`⌈num_fus / 64⌉`).
    #[inline]
    pub fn fu_mask_words(&self) -> usize {
        self.fu_mask_words
    }

    /// Bitmask of the units of `class` machine-wide: bit `id` of word `id / 64`
    /// is set iff unit `id` has that class.  The word-parallel MRT probe ANDs
    /// this row against its busy words so one `trailing_zeros` replaces a
    /// per-unit occupancy scan.
    #[inline]
    pub fn fu_mask_of_class(&self, class: OpClass) -> &[u64] {
        let w = self.fu_mask_words;
        &self.class_mask[class.index() * w..(class.index() + 1) * w]
    }

    /// Bitmask of the units of `class` inside `cluster` (same layout as
    /// [`Machine::fu_mask_of_class`]).
    #[inline]
    pub fn fu_mask_of_class_in_cluster(&self, cluster: ClusterId, class: OpClass) -> &[u64] {
        let w = self.fu_mask_words;
        let cc = cluster.index() * OpClass::COUNT + class.index();
        &self.cluster_class_mask[cc * w..(cc + 1) * w]
    }

    /// Per-class FU counts (machine-wide), indexed by [`OpClass::index`]; used by the
    /// resource-constrained MII computation.
    pub fn class_counts(&self) -> [usize; OpClass::COUNT] {
        let mut counts = [0usize; OpClass::COUNT];
        for fu in &self.fus {
            counts[fu.class.index()] += 1;
        }
        counts
    }

    /// True if values may flow directly from `producer_cluster` to
    /// `consumer_cluster`.
    ///
    /// On the ring a value can stay inside its own cluster (through the private QRF)
    /// or move to one of the two neighbouring clusters (through a communication
    /// queue).  The paper's partitioning algorithm does **not** insert transit moves,
    /// so non-adjacent communication is impossible (this is exactly the limitation
    /// discussed in Section 4).  On a torus or crossbar machine the same rule
    /// applies over that topology's adjacency relation — the partitioner, the
    /// simulator and the verifier all consult this one predicate, so swapping
    /// the interconnect needs no change anywhere else.
    pub fn clusters_communicate(
        &self,
        producer_cluster: ClusterId,
        consumer_cluster: ClusterId,
    ) -> bool {
        if producer_cluster == consumer_cluster {
            return true;
        }
        let n = self.clusters.len();
        if n <= 1 {
            return false;
        }
        self.topology.adjacent(producer_cluster.index(), consumer_cluster.index(), n)
    }

    /// The ring distance (minimum number of hops) between two clusters.
    pub fn ring_distance(&self, a: ClusterId, b: ClusterId) -> usize {
        let n = self.clusters.len();
        if n == 0 {
            return 0;
        }
        let d = (a.index() + n - b.index()) % n;
        d.min(n - d)
    }

    /// Total number of private queues across all clusters.
    pub fn total_private_queues(&self) -> usize {
        self.clusters.iter().map(|c| c.private_queues).sum()
    }

    /// Number of communication queues between one ordered pair of adjacent clusters
    /// (i.e. per direction), or 0 for a single-cluster machine.
    pub fn comm_queues_per_direction(&self) -> usize {
        self.ring.map(|r| r.queues_per_direction).unwrap_or(0)
    }
}

/// Number of copy units paired with a machine of `fus` compute units: one per three
/// compute units (one per paper cluster), at least one.
pub fn copy_units_for(fus: usize) -> usize {
    (fus / 3).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cluster_machine_shape() {
        let m = Machine::single_cluster(12, 4, 32, LatencyModel::default());
        assert_eq!(m.num_clusters(), 1);
        assert!(!m.is_clustered());
        assert_eq!(m.num_compute_fus(), 12);
        assert_eq!(m.num_fus(), 16); // 12 compute + 4 copy units
        assert_eq!(m.num_fus_of_class(OpClass::Memory), 4);
        assert_eq!(m.num_fus_of_class(OpClass::Adder), 4);
        assert_eq!(m.num_fus_of_class(OpClass::Multiplier), 4);
        assert_eq!(m.num_fus_of_class(OpClass::Copy), 4);
        assert!(m.ring().is_none());
        assert_eq!(m.comm_queues_per_direction(), 0);
    }

    #[test]
    fn paper_clustered_machine_shape() {
        let m = Machine::paper_clustered(4, LatencyModel::default());
        assert_eq!(m.num_clusters(), 4);
        assert!(m.is_clustered());
        assert_eq!(m.num_compute_fus(), 12);
        assert_eq!(m.num_fus(), 16);
        assert_eq!(m.comm_queues_per_direction(), 8);
        assert_eq!(m.total_private_queues(), 32);
        for c in m.cluster_ids() {
            assert_eq!(m.fus_of_class_in_cluster(c, OpClass::Memory).count(), 1);
            assert_eq!(m.fus_of_class_in_cluster(c, OpClass::Adder).count(), 1);
            assert_eq!(m.fus_of_class_in_cluster(c, OpClass::Multiplier).count(), 1);
            assert_eq!(m.fus_of_class_in_cluster(c, OpClass::Copy).count(), 1);
        }
    }

    #[test]
    fn equivalent_single_cluster_has_same_width() {
        for n in [4, 5, 6] {
            let clustered = Machine::paper_clustered(n, LatencyModel::default());
            let single = Machine::paper_single_cluster_equivalent(n, LatencyModel::default());
            assert_eq!(clustered.num_compute_fus(), single.num_compute_fus());
            assert_eq!(single.num_clusters(), 1);
        }
    }

    #[test]
    fn ring_adjacency_wraps_around() {
        let m = Machine::paper_clustered(4, LatencyModel::default());
        let c = |i| ClusterId(i);
        assert!(m.clusters_communicate(c(0), c(0)));
        assert!(m.clusters_communicate(c(0), c(1)));
        assert!(m.clusters_communicate(c(1), c(0)));
        assert!(m.clusters_communicate(c(0), c(3))); // wrap-around neighbour
        assert!(!m.clusters_communicate(c(0), c(2))); // across the ring
        assert!(!m.clusters_communicate(c(1), c(3)));
    }

    #[test]
    fn ring_distance_is_symmetric_and_bounded() {
        let m = Machine::paper_clustered(6, LatencyModel::default());
        for a in m.cluster_ids() {
            for b in m.cluster_ids() {
                let d = m.ring_distance(a, b);
                assert_eq!(d, m.ring_distance(b, a));
                assert!(d <= 3);
                assert_eq!(d == 0, a == b);
                assert_eq!(d <= 1, m.clusters_communicate(a, b));
            }
        }
    }

    #[test]
    fn two_cluster_ring_everything_adjacent() {
        let m = Machine::paper_clustered(2, LatencyModel::default());
        assert!(m.clusters_communicate(ClusterId(0), ClusterId(1)));
        assert!(m.clusters_communicate(ClusterId(1), ClusterId(0)));
    }

    #[test]
    fn paper_single_matches_the_experiment_incantation() {
        for fus in [4usize, 6, 12] {
            let m = Machine::paper_single(fus);
            let explicit =
                Machine::single_cluster(fus, copy_units_for(fus), 1024, LatencyModel::default());
            assert_eq!(m, explicit);
            assert_eq!(m.num_compute_fus(), fus);
        }
    }

    #[test]
    fn copy_units_scale_with_width() {
        assert_eq!(copy_units_for(4), 1);
        assert_eq!(copy_units_for(6), 2);
        assert_eq!(copy_units_for(12), 4);
        assert_eq!(copy_units_for(2), 1);
    }

    #[test]
    fn equal_machines_hash_equally() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Machine::paper_single(6));
        set.insert(Machine::paper_single(6));
        set.insert(Machine::paper_clustered(4, LatencyModel::default()));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn single_cluster_cannot_communicate_externally() {
        let m = Machine::single_cluster(4, 1, 32, LatencyModel::default());
        assert!(m.clusters_communicate(ClusterId(0), ClusterId(0)));
    }

    #[test]
    fn fu_ids_are_dense_and_ordered_by_cluster() {
        let m = Machine::paper_clustered(3, LatencyModel::default());
        for (i, fu) in m.fus().iter().enumerate() {
            assert_eq!(fu.id.index(), i);
        }
        // Cluster ids are non-decreasing over the FU list.
        let clusters: Vec<usize> = m.fus().iter().map(|fu| fu.cluster.index()).collect();
        let mut sorted = clusters.clone();
        sorted.sort_unstable();
        assert_eq!(clusters, sorted);
    }

    #[test]
    fn fu_index_tables_match_the_filtered_views() {
        for m in [
            Machine::paper_clustered(5, LatencyModel::default()),
            Machine::single_cluster(7, 2, 32, LatencyModel::default()),
        ] {
            for class in OpClass::ALL {
                let by_filter: Vec<FuId> =
                    m.fus().iter().filter(|f| f.class == class).map(|f| f.id).collect();
                assert_eq!(m.fu_ids_of_class(class), &by_filter[..]);
                assert_eq!(m.num_fus_of_class(class), by_filter.len());
                for c in m.cluster_ids() {
                    let per_cluster: Vec<FuId> = m
                        .fus()
                        .iter()
                        .filter(|f| f.class == class && f.cluster == c)
                        .map(|f| f.id)
                        .collect();
                    assert_eq!(m.fu_ids_of_class_in_cluster(c, class), &per_cluster[..]);
                }
            }
        }
    }

    #[test]
    fn fu_mask_tables_match_the_index_tables() {
        for m in [
            Machine::paper_clustered(5, LatencyModel::default()),
            Machine::single_cluster(7, 2, 32, LatencyModel::default()),
        ] {
            assert_eq!(m.fu_mask_words(), m.num_fus().div_ceil(64));
            let bits = |mask: &[u64]| -> Vec<FuId> {
                (0..m.num_fus())
                    .filter(|&i| mask[i / 64] >> (i % 64) & 1 == 1)
                    .map(|i| FuId(i as u32))
                    .collect()
            };
            for class in OpClass::ALL {
                assert_eq!(bits(m.fu_mask_of_class(class)), m.fu_ids_of_class(class));
                for c in m.cluster_ids() {
                    assert_eq!(
                        bits(m.fu_mask_of_class_in_cluster(c, class)),
                        m.fu_ids_of_class_in_cluster(c, class)
                    );
                }
            }
        }
    }

    #[test]
    fn class_counts_sum_to_num_fus() {
        let m = Machine::paper_clustered(5, LatencyModel::default());
        let counts = m.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), m.num_fus());
        assert_eq!(counts[OpClass::Memory.index()], 5);
        assert_eq!(counts[OpClass::Copy.index()], 5);
    }

    #[test]
    fn topology_swaps_the_adjacency_relation() {
        use crate::topology::Topology;
        let ring = Machine::paper_clustered(4, LatencyModel::default());
        let xbar = ring.clone().with_topology(Topology::Crossbar);
        assert_eq!(ring.topology(), Topology::Ring);
        assert_eq!(xbar.topology(), Topology::Crossbar);
        // The diagonal opens up on the crossbar...
        assert!(!ring.clusters_communicate(ClusterId(0), ClusterId(2)));
        assert!(xbar.clusters_communicate(ClusterId(0), ClusterId(2)));
        // ...and the two machines are distinct cache keys.
        assert_ne!(ring, xbar);
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ring);
        set.insert(xbar);
        assert_eq!(set.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_machine_panics() {
        let _ = Machine::new("bad", vec![], None, LatencyModel::default());
    }

    #[test]
    #[should_panic(expected = "ring configuration")]
    fn clustered_machine_without_ring_panics() {
        let _ = Machine::new(
            "bad",
            vec![ClusterConfig::paper_basic(), ClusterConfig::paper_basic()],
            None,
            LatencyModel::default(),
        );
    }
}
