//! Cluster and interconnect configuration.

use vliw_ddg::OpClass;

/// Configuration of one cluster of functional units with its private queue register
/// file (QRF).
///
/// The paper's basic cluster (Fig. 5a / Fig. 7) contains one load/store unit, one
/// adder, one multiplier, a copy unit, and a private QRF of 8 queues.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClusterConfig {
    /// Compute functional units of the cluster, by class (copy units are configured
    /// separately through `copy_units`).
    pub fu_classes: Vec<OpClass>,
    /// Number of dedicated copy units in the cluster.
    ///
    /// Copy units execute the copy operations inserted by the QRF allocator when a
    /// value is consumed more than once; the paper adds one per cluster and does not
    /// count it towards the machine's "FUs" figure.
    pub copy_units: usize,
    /// Number of queues in the cluster's private QRF.
    pub private_queues: usize,
    /// Maximum number of values simultaneously resident in one queue.
    pub queue_capacity: usize,
}

impl ClusterConfig {
    /// The paper's basic cluster: 1 L/S + 1 ADD + 1 MUL, one copy unit, 8 private
    /// queues (Fig. 7).  Queue capacity defaults to 8 slots.
    pub fn paper_basic() -> Self {
        ClusterConfig {
            fu_classes: vec![OpClass::Memory, OpClass::Adder, OpClass::Multiplier],
            copy_units: 1,
            private_queues: 8,
            queue_capacity: 8,
        }
    }

    /// A cluster holding an arbitrary mix of compute units, split as evenly as
    /// possible between L/S, ADD and MUL (extra units go to the adder first and then
    /// to the load/store unit), which is how the single-cluster machines of 4–18 FUs
    /// used in Figs. 8 and 9 are constructed.
    pub fn balanced(num_compute_fus: usize, copy_units: usize, private_queues: usize) -> Self {
        let mut fu_classes = Vec::with_capacity(num_compute_fus);
        let base = num_compute_fus / 3;
        let rem = num_compute_fus % 3;
        let mem = base + usize::from(rem >= 2);
        let add = base + usize::from(rem >= 1);
        let mul = num_compute_fus - mem - add;
        fu_classes.extend(std::iter::repeat_n(OpClass::Memory, mem));
        fu_classes.extend(std::iter::repeat_n(OpClass::Adder, add));
        fu_classes.extend(std::iter::repeat_n(OpClass::Multiplier, mul));
        ClusterConfig { fu_classes, copy_units, private_queues, queue_capacity: 8 }
    }

    /// Number of compute functional units (excluding copy units).
    pub fn num_compute_fus(&self) -> usize {
        self.fu_classes.len()
    }

    /// Number of compute units of the given class.
    pub fn fus_of_class(&self, class: OpClass) -> usize {
        if class == OpClass::Copy {
            self.copy_units
        } else {
            self.fu_classes.iter().filter(|&&c| c == class).count()
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::paper_basic()
    }
}

/// Configuration of the bidirectional ring of communication queues that connects
/// adjacent clusters (Fig. 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RingConfig {
    /// Number of communication queues available in each direction between a pair of
    /// adjacent clusters.  The paper's sizing experiments settle on 8 (Fig. 7).
    pub queues_per_direction: usize,
    /// Maximum number of values simultaneously resident in one communication queue.
    pub queue_capacity: usize,
}

impl RingConfig {
    /// The paper's ring: 8 queues in each direction, capacity 8.
    pub fn paper_basic() -> Self {
        RingConfig { queues_per_direction: 8, queue_capacity: 8 }
    }
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig::paper_basic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_basic_cluster_matches_fig7() {
        let c = ClusterConfig::paper_basic();
        assert_eq!(c.num_compute_fus(), 3);
        assert_eq!(c.fus_of_class(OpClass::Memory), 1);
        assert_eq!(c.fus_of_class(OpClass::Adder), 1);
        assert_eq!(c.fus_of_class(OpClass::Multiplier), 1);
        assert_eq!(c.fus_of_class(OpClass::Copy), 1);
        assert_eq!(c.private_queues, 8);
    }

    #[test]
    fn balanced_split_is_stable_and_total_preserving() {
        for n in 1..=18 {
            let c = ClusterConfig::balanced(n, 1, 32);
            assert_eq!(c.num_compute_fus(), n, "total FU count must be preserved for n={n}");
            let mem = c.fus_of_class(OpClass::Memory);
            let add = c.fus_of_class(OpClass::Adder);
            let mul = c.fus_of_class(OpClass::Multiplier);
            assert_eq!(mem + add + mul, n);
            // The split never differs by more than one between classes.
            let max = mem.max(add).max(mul);
            let min = mem.min(add).min(mul);
            assert!(max - min <= 1, "unbalanced split for n={n}: {mem}/{add}/{mul}");
        }
    }

    #[test]
    fn balanced_known_values() {
        let c4 = ClusterConfig::balanced(4, 0, 32);
        assert_eq!(
            [
                c4.fus_of_class(OpClass::Memory),
                c4.fus_of_class(OpClass::Adder),
                c4.fus_of_class(OpClass::Multiplier)
            ],
            [1, 2, 1]
        );
        let c6 = ClusterConfig::balanced(6, 0, 32);
        assert_eq!(
            [
                c6.fus_of_class(OpClass::Memory),
                c6.fus_of_class(OpClass::Adder),
                c6.fus_of_class(OpClass::Multiplier)
            ],
            [2, 2, 2]
        );
        let c12 = ClusterConfig::balanced(12, 0, 32);
        assert_eq!(
            [
                c12.fus_of_class(OpClass::Memory),
                c12.fus_of_class(OpClass::Adder),
                c12.fus_of_class(OpClass::Multiplier)
            ],
            [4, 4, 4]
        );
    }

    #[test]
    fn ring_defaults_match_paper() {
        let r = RingConfig::paper_basic();
        assert_eq!(r.queues_per_direction, 8);
        assert_eq!(r.queue_capacity, 8);
        assert_eq!(RingConfig::default(), r);
    }

    #[test]
    fn default_cluster_is_paper_basic() {
        assert_eq!(ClusterConfig::default(), ClusterConfig::paper_basic());
    }
}
