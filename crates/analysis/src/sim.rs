//! The simulated-IPC report row: corpus-level aggregation of cycle-accurate
//! simulation runs.
//!
//! The `vliw-sim` crate measures one (loop, machine, trip-count) execution at a
//! time; the `figures simulate` experiment sweeps a corpus through a set of
//! machines and trip counts and aggregates each sweep point into one
//! [`SimReport`] row.  The row carries both the simulated numbers and the
//! closed-form ones (`ops·N / ((SC−1+N)·II)`), so the figure doubles as an
//! end-to-end check that the formula-derived Figs. 8–9 rest on executions that
//! actually complete without a single dynamic violation.

use serde::{Deserialize, Serialize};

/// One row of the simulated-IPC figure: a (machine, trip count) sweep point
/// aggregated over every loop of the corpus that scheduled on that machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Machine name (e.g. `single-6fu`, `clustered-4x3fu`).
    pub machine: String,
    /// Machine width in compute FUs.
    pub fus: usize,
    /// Number of clusters.
    pub clusters: usize,
    /// Trip count each loop was executed for.
    pub trip_count: u64,
    /// Number of loops simulated (the ones that scheduled on this machine).
    pub loops: usize,
    /// Total **schedule faults** observed across all simulated loops —
    /// dependences missed at run time, double-booked or wrong-class units,
    /// values flowing between non-adjacent clusters.  0 for a healthy pipeline:
    /// a statically valid schedule must never produce one.
    pub violations: u64,
    /// Number of loops whose values overflowed the machine's queue storage
    /// (private QRF or ring link) at some cycle.  This is machine-sizing data,
    /// not a schedule defect: it is the execution-observed counterpart of the
    /// Fig. 7 "does not fit the cluster budget" population.
    pub loops_overflowing_queues: usize,
    /// Mean simulated dynamic IPC over the simulated loops.
    pub mean_sim_dynamic_ipc: f64,
    /// Mean closed-form dynamic IPC over the same loops.
    pub mean_formula_dynamic_ipc: f64,
    /// Largest absolute per-loop difference between the simulated and the
    /// closed-form dynamic IPC.
    pub max_ipc_abs_error: f64,
    /// True if every simulated loop's cycle count equals
    /// `Schedule::total_cycles` (the `(SC − 1 + N) · II` closed form).
    pub cycles_match_formula: bool,
    /// Largest peak private-QRF occupancy (in values) observed in any cluster
    /// of any simulated loop.
    pub max_peak_private_occupancy: usize,
    /// Largest peak communication-queue occupancy observed on any ring link of
    /// any simulated loop (0 on single-cluster machines).
    pub max_peak_comm_occupancy: usize,
    /// Mean copy-bus utilisation (fraction of copy-unit issue slots used).
    pub mean_copy_bus_utilisation: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_report_round_trips_through_display_fields() {
        let row = SimReport {
            machine: "single-6fu".to_string(),
            fus: 6,
            clusters: 1,
            trip_count: 100,
            loops: 32,
            violations: 0,
            loops_overflowing_queues: 0,
            mean_sim_dynamic_ipc: 2.5,
            mean_formula_dynamic_ipc: 2.5,
            max_ipc_abs_error: 0.0,
            cycles_match_formula: true,
            max_peak_private_occupancy: 17,
            max_peak_comm_occupancy: 0,
            mean_copy_bus_utilisation: 0.25,
        };
        let copy = row.clone();
        assert_eq!(row, copy);
        assert_eq!(row.machine, "single-6fu");
    }
}
