//! Performance analysis and experiment aggregation for the IPPS 1998 reproduction.
//!
//! The crate provides the measurement side of the paper's evaluation:
//!
//! * [`ipc`] — static (kernel) and dynamic (whole-execution) issue rates used in
//!   Figs. 8 and 9;
//! * [`classify`] — the resource- vs recurrence-constrained loop classification that
//!   separates Fig. 9 from Fig. 8;
//! * [`aggregate`] — corpus-level fractions, means and the cumulative histograms
//!   behind Fig. 3;
//! * [`sim`] — the corpus-level row type of the simulated-IPC figure produced by
//!   the cycle-accurate `vliw-sim` runs;
//! * [`sweep`] — the design-space-sweep row type and the Pareto-frontier
//!   analysis behind the Fig. 7 sizing conclusion;
//! * [`table`] — plain-text table rendering used by the `figures` binary and the
//!   benchmark harness.

pub mod aggregate;
pub mod classify;
pub mod ipc;
pub mod sim;
pub mod sweep;
pub mod table;

pub use aggregate::{fraction, mean, pct, CumulativeHistogram};
pub use classify::{classify, is_resource_constrained, Constraint};
pub use ipc::{dynamic_ipc, ipc_of, ipc_of_unrolled, static_ipc, IpcReport};
pub use sim::SimReport;
pub use sweep::{mark_pareto, SweepRow};
pub use table::TextTable;
