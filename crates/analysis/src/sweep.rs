//! The design-space-sweep report row and its Pareto-frontier analysis.
//!
//! The `figures sweep` experiment classifies every (machine configuration,
//! loop) pair of a design-space grid as schedulable / allocation-fits /
//! simulation-clean and aggregates each grid point into one [`SweepRow`].
//! This module holds the row type plus the sizing analysis the paper's Fig. 7
//! conclusion rests on: which configurations are *Pareto-efficient* — no other
//! configuration of the same machine shape is simultaneously cheaper in queue
//! storage and at least as good at keeping the corpus capacity-clean.

use serde::{de, Deserialize, Serialize, Value};

/// One grid point of the design-space sweep, aggregated over the corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Number of clusters on the interconnect.
    pub clusters: usize,
    /// Cluster FU-mix tag (`basic`, `wide`).
    pub fu_mix: String,
    /// Interconnect-topology tag (`ring`, `torus`, `xbar`).  The paper's
    /// machines are all rings; the huge grid opens this axis.
    pub topology: String,
    /// Total compute FUs of the machine.
    pub fus: usize,
    /// Queues per cluster (private QRF; also ring queues per direction).
    pub queues_per_cluster: usize,
    /// Entries per private queue.
    pub queue_capacity: usize,
    /// Entries per ring communication queue.
    pub link_depth: usize,
    /// Total queue storage of the configuration, in bits.
    pub storage_bits: u64,
    /// Loops in the corpus (the denominator of every fraction below).
    pub loops: usize,
    /// Fraction of the corpus that schedules on the machine shape at all.
    pub frac_schedulable: f64,
    /// Fraction whose per-pool queue allocation fits the configured budgets
    /// (the corrected, pool-split Fig. 7 predicate).
    pub frac_alloc_fits: f64,
    /// Fraction whose cycle-accurate execution stays within the configured
    /// storage pools at every cycle (zero capacity faults).
    pub frac_sim_clean: f64,
    /// Fraction that passes the whole pipeline: schedulable, pool-split
    /// allocation fits, and execution capacity-clean.  This is the "fits the
    /// configuration" population of Fig. 7 and the quality axis of the Pareto
    /// analysis — a loop whose queues cannot be allocated is not served by the
    /// aggregate pools having spare entries.
    pub frac_clean: f64,
    /// True if no same-shape configuration has storage ≤ and `frac_clean` ≥
    /// with at least one strict — the sizing frontier of Fig. 7.
    pub pareto: bool,
    /// True for the paper's published sizing (8 queues × 8 entries, depth-8
    /// links, basic cluster).
    pub paper_point: bool,
}

impl SweepRow {
    /// The machine-shape key frontier membership is computed within.
    fn shape(&self) -> (usize, &str, &str) {
        (self.clusters, self.fu_mix.as_str(), self.topology.as_str())
    }
}

// ---------------------------------------------------------------------------
// Wire form, by hand so the topology axis stays backward-compatible: `topology`
// is emitted only when it differs from the paper's ring and defaults to
// `"ring"` on the way back in — every pre-topology baseline file parses and
// re-serializes byte-identically.
// ---------------------------------------------------------------------------

impl Serialize for SweepRow {
    fn serialize(&self) -> Value {
        let mut entries = vec![
            ("clusters".to_string(), self.clusters.serialize()),
            ("fu_mix".to_string(), self.fu_mix.serialize()),
        ];
        if self.topology != "ring" {
            entries.push(("topology".to_string(), self.topology.serialize()));
        }
        entries.extend([
            ("fus".to_string(), self.fus.serialize()),
            ("queues_per_cluster".to_string(), self.queues_per_cluster.serialize()),
            ("queue_capacity".to_string(), self.queue_capacity.serialize()),
            ("link_depth".to_string(), self.link_depth.serialize()),
            ("storage_bits".to_string(), self.storage_bits.serialize()),
            ("loops".to_string(), self.loops.serialize()),
            ("frac_schedulable".to_string(), self.frac_schedulable.serialize()),
            ("frac_alloc_fits".to_string(), self.frac_alloc_fits.serialize()),
            ("frac_sim_clean".to_string(), self.frac_sim_clean.serialize()),
            ("frac_clean".to_string(), self.frac_clean.serialize()),
            ("pareto".to_string(), self.pareto.serialize()),
            ("paper_point".to_string(), self.paper_point.serialize()),
        ]);
        Value::Object(entries)
    }
}

impl Deserialize for SweepRow {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        let entries = v.as_object().ok_or_else(|| de::Error::unexpected("object", v))?;
        Ok(SweepRow {
            clusters: de::field(entries, "clusters")?,
            fu_mix: de::field(entries, "fu_mix")?,
            topology: de::field::<Option<String>>(entries, "topology")?
                .unwrap_or_else(|| "ring".to_string()),
            fus: de::field(entries, "fus")?,
            queues_per_cluster: de::field(entries, "queues_per_cluster")?,
            queue_capacity: de::field(entries, "queue_capacity")?,
            link_depth: de::field(entries, "link_depth")?,
            storage_bits: de::field(entries, "storage_bits")?,
            loops: de::field(entries, "loops")?,
            frac_schedulable: de::field(entries, "frac_schedulable")?,
            frac_alloc_fits: de::field(entries, "frac_alloc_fits")?,
            frac_sim_clean: de::field(entries, "frac_sim_clean")?,
            frac_clean: de::field(entries, "frac_clean")?,
            pareto: de::field(entries, "pareto")?,
            paper_point: de::field(entries, "paper_point")?,
        })
    }
}

/// Recomputes the `pareto` flag of every row.
///
/// Frontier membership is decided *within each machine shape* (cluster count ×
/// FU mix × topology): configurations of different shapes trade storage against
/// compute performance, which the clean fraction alone cannot rank, whereas
/// within a shape the schedules are identical and only the storage sizing
/// varies — the exact comparison Fig. 7 makes.  A row is dominated if some
/// same-shape row has `storage_bits ≤` and `frac_clean ≥` with at least one
/// strict.
pub fn mark_pareto(rows: &mut [SweepRow]) {
    for i in 0..rows.len() {
        let dominated = rows.iter().enumerate().any(|(j, other)| {
            j != i
                && other.shape() == rows[i].shape()
                && other.storage_bits <= rows[i].storage_bits
                && other.frac_clean >= rows[i].frac_clean
                && (other.storage_bits < rows[i].storage_bits
                    || other.frac_clean > rows[i].frac_clean)
        });
        rows[i].pareto = !dominated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bits: u64, clean: f64) -> SweepRow {
        SweepRow {
            clusters: 4,
            fu_mix: "basic".to_string(),
            topology: "ring".to_string(),
            fus: 12,
            queues_per_cluster: 8,
            queue_capacity: 8,
            link_depth: 8,
            storage_bits: bits,
            loops: 32,
            frac_schedulable: 1.0,
            frac_alloc_fits: clean,
            frac_sim_clean: clean,
            frac_clean: clean,
            pareto: false,
            paper_point: false,
        }
    }

    #[test]
    fn strictly_better_rows_dominate() {
        let mut rows = vec![row(100, 0.5), row(200, 0.5), row(200, 0.9), row(400, 0.9)];
        mark_pareto(&mut rows);
        assert!(rows[0].pareto, "cheapest at its level");
        assert!(!rows[1].pareto, "same clean fraction, more storage");
        assert!(rows[2].pareto, "cheapest at the higher level");
        assert!(!rows[3].pareto);
    }

    #[test]
    fn incomparable_rows_are_both_on_the_frontier() {
        let mut rows = vec![row(100, 0.5), row(200, 0.8)];
        mark_pareto(&mut rows);
        assert!(rows[0].pareto && rows[1].pareto);
    }

    #[test]
    fn equal_rows_do_not_dominate_each_other() {
        let mut rows = vec![row(100, 0.5), row(100, 0.5)];
        mark_pareto(&mut rows);
        assert!(rows[0].pareto && rows[1].pareto);
    }

    #[test]
    fn frontiers_are_computed_per_machine_shape() {
        let mut rows = vec![row(100, 0.5), row(400, 0.4)];
        rows[1].clusters = 6; // different shape: not comparable
        mark_pareto(&mut rows);
        assert!(rows[0].pareto && rows[1].pareto);
        // The same pair within one shape: the expensive-and-worse row falls off.
        let mut rows = vec![row(100, 0.5), row(400, 0.4)];
        mark_pareto(&mut rows);
        assert!(rows[0].pareto);
        assert!(!rows[1].pareto);
    }

    #[test]
    fn frontiers_split_on_the_topology_axis() {
        // Same clusters and mix, different topology: incomparable shapes.
        let mut rows = vec![row(100, 0.5), row(400, 0.4)];
        rows[1].topology = "xbar".to_string();
        mark_pareto(&mut rows);
        assert!(rows[0].pareto && rows[1].pareto);
    }

    #[test]
    fn rows_round_trip_through_serde() {
        let r = row(768 * 32, 0.875);
        let json = serde_json::to_string(&r).unwrap();
        let back: SweepRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn ring_rows_keep_the_pre_topology_wire_form() {
        // The paper's ring rows must serialize without a `topology` key so
        // committed baselines stay byte-identical, and rows written before the
        // topology axis existed must read back as rings.
        let r = row(100, 0.5);
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("topology"), "{json}");
        let back: SweepRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back.topology, "ring");
    }

    #[test]
    fn non_ring_rows_carry_their_topology_on_the_wire() {
        let mut r = row(100, 0.5);
        r.topology = "torus".to_string();
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"topology\":\"torus\""), "{json}");
        let back: SweepRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
