//! Instructions-per-cycle (IPC) metrics.
//!
//! The paper reports two issue-rate metrics (Figs. 8 and 9):
//!
//! * **static IPC** — operations issued per cycle in the kernel (steady state):
//!   `ops_per_iteration / II`;
//! * **dynamic IPC** — operations issued per cycle over the whole execution of the
//!   loop, including the less efficient prologue and epilogue phases:
//!   `ops_per_iteration · N / ((SC − 1 + N) · II)` for trip count `N` and stage
//!   count `SC`.
//!
//! Dynamic IPC approaches static IPC as the trip count grows, which is why the
//! paper's dynamic numbers are dominated by a few long-running loops.

use serde::{Deserialize, Serialize};
use vliw_ddg::Loop;
use vliw_sched::Schedule;

/// Static (kernel) issue rate of a schedule: operations per cycle at steady state.
pub fn static_ipc(ops_per_iteration: usize, schedule: &Schedule) -> f64 {
    ops_per_iteration as f64 / schedule.ii as f64
}

/// Dynamic issue rate over `trip_count` iterations, including prologue and epilogue.
pub fn dynamic_ipc(ops_per_iteration: usize, schedule: &Schedule, trip_count: u64) -> f64 {
    if trip_count == 0 {
        return 0.0;
    }
    let total_ops = ops_per_iteration as u64 * trip_count;
    let total_cycles = schedule.total_cycles(trip_count);
    total_ops as f64 / total_cycles as f64
}

/// Static and dynamic IPC of a scheduled loop.
///
/// `ops_per_original_iteration` and `iterations_per_body` let callers account for
/// unrolling: when a loop is unrolled by `U`, the scheduled body contains
/// `U · ops_per_original_iteration` operations and executes `trip_count / U` body
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IpcReport {
    /// Operations issued per cycle at steady state.
    pub static_ipc: f64,
    /// Operations issued per cycle over the full execution.
    pub dynamic_ipc: f64,
}

/// Computes the IPC report for a loop scheduled as-is (no unrolling).
pub fn ipc_of(lp: &Loop, schedule: &Schedule) -> IpcReport {
    ipc_of_unrolled(lp, schedule, 1)
}

/// Computes the IPC report for a loop whose body was unrolled by `factor` before
/// scheduling.
///
/// The body executes `ceil(trip_count / factor)` times; the operation count per body
/// iteration is `factor · ops_per_original_iteration` (taken from the schedule's
/// length indirectly through the loop's own op count).
pub fn ipc_of_unrolled(lp: &Loop, schedule: &Schedule, factor: u32) -> IpcReport {
    let factor = factor.max(1) as u64;
    let body_ops = lp.ops_per_iteration() * factor as usize;
    let body_iterations = lp.trip_count.div_ceil(factor).max(1);
    IpcReport {
        static_ipc: static_ipc(body_ops, schedule),
        dynamic_ipc: dynamic_ipc(body_ops, schedule, body_iterations),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, LatencyModel};
    use vliw_machine::FuId;
    use vliw_machine::Machine;
    use vliw_sched::{modulo_schedule, ImsOptions, Schedule};

    fn fake_schedule(ii: u32, starts: Vec<u32>) -> Schedule {
        let n = starts.len();
        Schedule::new(ii, starts, vec![FuId(0); n])
    }

    #[test]
    fn static_ipc_is_ops_over_ii() {
        let s = fake_schedule(4, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!((static_ipc(8, &s) - 2.0).abs() < 1e-12);
        assert!((static_ipc(2, &s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dynamic_ipc_approaches_static_with_large_trip_counts() {
        let s = fake_schedule(2, vec![0, 1, 2, 5]); // SC = 3
        let ops = 4;
        let small = dynamic_ipc(ops, &s, 2);
        let large = dynamic_ipc(ops, &s, 100_000);
        let stat = static_ipc(ops, &s);
        assert!(small < large);
        assert!(large <= stat + 1e-9);
        assert!((large - stat).abs() < 0.01);
    }

    #[test]
    fn dynamic_ipc_formula_matches_hand_computation() {
        // SC = 3, II = 2, N = 10: cycles = (3 - 1 + 10) * 2 = 24; ops = 4 * 10 = 40.
        let s = fake_schedule(2, vec![0, 1, 2, 5]);
        let got = dynamic_ipc(4, &s, 10);
        assert!((got - 40.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn zero_trip_count_gives_zero_dynamic_ipc() {
        let s = fake_schedule(2, vec![0]);
        assert_eq!(dynamic_ipc(1, &s, 0), 0.0);
    }

    #[test]
    fn ipc_of_real_kernel_is_consistent() {
        let lat = LatencyModel::default();
        let m = Machine::single_cluster(6, 2, 32, lat);
        let lp = kernels::daxpy(lat, 1000);
        let r = modulo_schedule(&lp.ddg, &m, ImsOptions::default()).unwrap();
        let ipc = ipc_of(&lp, &r.schedule);
        assert!(ipc.static_ipc > 0.0);
        assert!(ipc.dynamic_ipc > 0.0);
        assert!(ipc.dynamic_ipc <= ipc.static_ipc + 1e-9);
        assert!(ipc.static_ipc <= 6.0 + 2.0, "cannot exceed machine width");
    }

    #[test]
    fn unrolled_ipc_accounts_for_factor() {
        // An unrolled body with twice the ops at twice the II has the same static
        // IPC per original iteration.
        let lp = kernels::daxpy(LatencyModel::default(), 1000);
        let s1 = fake_schedule(2, vec![0; lp.ops_per_iteration()]);
        let s2 = fake_schedule(4, vec![0; lp.ops_per_iteration() * 2]);
        let a = ipc_of_unrolled(&lp, &s1, 1);
        let b = ipc_of_unrolled(&lp, &s2, 2);
        assert!((a.static_ipc - b.static_ipc).abs() < 1e-9);
    }
}
