//! Loop classification.
//!
//! Figure 9 of the paper restricts the IPC analysis to *resource-constrained* loops:
//! loops whose II is limited by the available functional units rather than by a
//! recurrence circuit.  Recurrence-bound loops cannot benefit from a wider machine,
//! so including them (Fig. 8) dilutes the scaling curves.

use vliw_ddg::Ddg;
use vliw_machine::Machine;
use vliw_sched::{rec_mii, res_mii, SchedError};

/// How a loop's minimum II is determined on a given machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// `ResMII >= RecMII`: the functional units are the bottleneck; a wider machine
    /// (or unrolling) can speed this loop up.
    Resource,
    /// `RecMII > ResMII`: a dependence circuit is the bottleneck; extra functional
    /// units cannot help.
    Recurrence,
}

/// Classifies a loop on a machine.
pub fn classify(ddg: &Ddg, machine: &Machine) -> Result<Constraint, SchedError> {
    let res = res_mii(ddg, machine)?;
    let rec = rec_mii(ddg);
    Ok(if res >= rec { Constraint::Resource } else { Constraint::Recurrence })
}

/// Convenience predicate: true when the loop is resource constrained on `machine`.
pub fn is_resource_constrained(ddg: &Ddg, machine: &Machine) -> bool {
    matches!(classify(ddg, machine), Ok(Constraint::Resource))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, DdgBuilder, LatencyModel, OpKind};
    use vliw_machine::LatencyModel as MachineLatency;

    fn machine(fus: usize) -> Machine {
        Machine::single_cluster(fus, 2, 32, MachineLatency::default())
    }

    #[test]
    fn parallel_loop_is_resource_constrained_everywhere() {
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        for fus in [3, 6, 12] {
            assert!(is_resource_constrained(&l.ddg, &machine(fus)));
        }
    }

    #[test]
    fn recurrence_loop_becomes_recurrence_bound_on_wide_machines() {
        let l = kernels::first_order_recurrence(LatencyModel::default(), 100);
        // On a very narrow machine resources dominate...
        assert_eq!(classify(&l.ddg, &machine(3)).unwrap(), Constraint::Resource);
        // ...but on a wide one the mul+add circuit is the bottleneck.
        assert_eq!(classify(&l.ddg, &machine(18)).unwrap(), Constraint::Recurrence);
    }

    #[test]
    fn classification_errors_propagate() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.op(OpKind::Copy);
        let g = b.finish();
        let m = Machine::single_cluster(3, 0, 32, MachineLatency::default());
        assert!(classify(&g, &m).is_err());
        assert!(!is_resource_constrained(&g, &m));
    }
}
