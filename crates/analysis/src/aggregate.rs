//! Corpus-level aggregation helpers used by the experiment drivers.

use serde::{Deserialize, Serialize};

/// Fraction (0..=1) of items satisfying a predicate.
pub fn fraction<T>(items: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    items.iter().filter(|x| pred(x)).count() as f64 / items.len() as f64
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// A cumulative histogram over fixed bucket upper bounds (e.g. the queue budgets
/// 4/8/16/32 of Fig. 3): `cdf[i]` is the fraction of samples `<= bounds[i]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CumulativeHistogram {
    /// Bucket upper bounds, in increasing order.
    pub bounds: Vec<usize>,
    /// Fraction of samples at or below each bound.
    pub cdf: Vec<f64>,
    /// Fraction of samples above the last bound.
    pub overflow: f64,
    /// Total number of samples.
    pub samples: usize,
}

impl CumulativeHistogram {
    /// Builds the cumulative histogram of `samples` over `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(samples: &[usize], bounds: &[usize]) -> Self {
        assert!(!bounds.is_empty(), "at least one bucket bound is required");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        let n = samples.len();
        let cdf = bounds
            .iter()
            .map(|&b| {
                if n == 0 {
                    0.0
                } else {
                    samples.iter().filter(|&&s| s <= b).count() as f64 / n as f64
                }
            })
            .collect::<Vec<_>>();
        let overflow = if n == 0 {
            0.0
        } else {
            samples.iter().filter(|&&s| s > *bounds.last().unwrap()).count() as f64 / n as f64
        };
        CumulativeHistogram { bounds: bounds.to_vec(), cdf, overflow, samples: n }
    }

    /// The fraction of samples at or below `bound` (which must be one of the bucket
    /// bounds).
    pub fn fraction_within(&self, bound: usize) -> f64 {
        self.bounds
            .iter()
            .position(|&b| b == bound)
            .map(|i| self.cdf[i])
            .unwrap_or_else(|| panic!("{bound} is not a bucket bound of this histogram"))
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `"94.7%"`.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_counts_matching_items() {
        let xs = [1, 2, 3, 4, 5];
        assert!((fraction(&xs, |&x| x % 2 == 0) - 0.4).abs() < 1e-12);
        assert_eq!(fraction::<i32>(&[], |_| true), 0.0);
        assert!((fraction(&xs, |_| true) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_histogram_matches_fig3_buckets() {
        // Queue requirements of 10 loops against the 4/8/16/32 budgets.
        let samples = [2, 3, 5, 7, 9, 12, 17, 20, 33, 40];
        let h = CumulativeHistogram::new(&samples, &[4, 8, 16, 32]);
        assert!((h.fraction_within(4) - 0.2).abs() < 1e-12);
        assert!((h.fraction_within(8) - 0.4).abs() < 1e-12);
        assert!((h.fraction_within(16) - 0.6).abs() < 1e-12);
        assert!((h.fraction_within(32) - 0.8).abs() < 1e-12);
        assert!((h.overflow - 0.2).abs() < 1e-12);
        assert_eq!(h.samples, 10);
    }

    #[test]
    fn cdf_is_monotone() {
        let samples = [1, 5, 9, 9, 9, 31, 64, 2, 4, 8];
        let h = CumulativeHistogram::new(&samples, &[4, 8, 16, 32]);
        for w in h.cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = CumulativeHistogram::new(&[], &[4, 8]);
        assert_eq!(h.cdf, vec![0.0, 0.0]);
        assert_eq!(h.overflow, 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = CumulativeHistogram::new(&[1], &[8, 4]);
    }

    #[test]
    #[should_panic(expected = "not a bucket bound")]
    fn unknown_bound_rejected() {
        let h = CumulativeHistogram::new(&[1], &[4, 8]);
        let _ = h.fraction_within(5);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.947), "94.7%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(0.0), "0.0%");
    }
}
