//! Plain-text table rendering for experiment reports.
//!
//! The benchmark harness and the `figures` binary print each reproduced table/figure
//! as an aligned text table, which is what EXPERIMENTS.md records.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.  Rows shorter than the header are padded with empty cells;
    /// longer rows are allowed and simply widen the table.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["machine", "loops", "same II"]);
        t.row(vec!["4 clusters", "1258", "95.0%"]);
        t.row(vec!["5 clusters", "1258", "84.0%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("machine"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("95.0%"));
        // Columns are aligned: "1258" starts at the same offset in both data rows.
        let off2 = lines[2].find("1258").unwrap();
        let off3 = lines[3].find("1258").unwrap();
        assert_eq!(off2, off3);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        let s = t.render();
        assert!(s.contains('x'));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(vec!["h"]);
        t.row(vec!["v"]);
        assert_eq!(format!("{t}"), t.render());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(vec!["only", "header"]);
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
    }
}
