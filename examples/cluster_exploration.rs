//! Design-space exploration: how far does the ring-connected clustered machine
//! scale before the partitioning penalty bites?
//!
//! ```text
//! cargo run --release --example cluster_exploration            # 200 loops
//! cargo run --release --example cluster_exploration -- 600     # larger sample
//! ```
//!
//! For 2–8 clusters the example compares the partitioned schedules against the
//! equivalent single-cluster machine (same FU mix, one big register file) and also
//! against the paper's proposed extension (transit moves between non-adjacent
//! clusters, `PartitionOptions::with_transit_moves`), reproducing the scalability
//! discussion of Sections 4 and 5.

use vliw_core::analysis::{fraction, mean, pct, TextTable};
use vliw_core::experiments::{par_map, ExperimentConfig};
use vliw_core::qrf::insert_copies;
use vliw_core::sched::{modulo_schedule, ImsOptions};
use vliw_core::unroll::unroll_for_machine;
use vliw_core::{partition_schedule, LatencyModel, Machine, PartitionOptions};

fn main() {
    let loops: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let cfg = ExperimentConfig::quick(loops, 77);
    let corpus = cfg.corpus();
    let lat = LatencyModel::default();

    let mut table = TextTable::new(vec![
        "clusters",
        "FUs",
        "same II as single",
        "same II with transit moves",
        "mean II ratio",
        "mean cross traffic",
    ]);

    for clusters in 2..=8usize {
        let clustered = Machine::paper_clustered(clusters, lat);
        let single = Machine::paper_single_cluster_equivalent(clusters, lat);

        #[derive(Clone, Copy)]
        struct Sample {
            single_ii: u32,
            ring_ii: u32,
            transit_ii: u32,
            cross_fraction: f64,
        }

        let samples: Vec<Sample> = par_map(&corpus, cfg.threads, |lp| {
            // Same preparation for all machines: unroll for the clustered machine's
            // width, then insert copies.
            let unrolled = unroll_for_machine(lp, &clustered, 4);
            let body = insert_copies(&unrolled.ddg, &lat).ddg;
            let s = modulo_schedule(&body, &single, ImsOptions::default()).ok()?;
            let ring = partition_schedule(&body, &clustered, PartitionOptions::default()).ok()?;
            let transit = partition_schedule(
                &body,
                &clustered,
                PartitionOptions::default().with_transit_moves(),
            )
            .ok()?;
            Some(Sample {
                single_ii: s.schedule.ii,
                ring_ii: ring.schedule.ii,
                transit_ii: transit.schedule.ii,
                cross_fraction: ring.comm.cross_fraction(),
            })
        })
        .into_iter()
        .flatten()
        .collect();

        table.row(vec![
            clusters.to_string(),
            (3 * clusters).to_string(),
            pct(fraction(&samples, |s| s.ring_ii == s.single_ii)),
            pct(fraction(&samples, |s| s.transit_ii == s.single_ii)),
            format!(
                "{:.3}",
                mean(
                    &samples
                        .iter()
                        .map(|s| s.ring_ii as f64 / s.single_ii as f64)
                        .collect::<Vec<_>>()
                )
            ),
            pct(mean(&samples.iter().map(|s| s.cross_fraction).collect::<Vec<_>>())),
        ]);
    }

    println!("{table}");
    println!(
        "\"same II with transit moves\" models the paper's future-work extension: values may\n\
         hop between non-adjacent clusters, removing the main cause of the degradation the\n\
         paper observes at 5 and 6 clusters."
    );
}
