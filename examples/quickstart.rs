//! Quickstart: compile one loop for a clustered VLIW machine and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds the paper's 4-cluster machine (12 compute FUs organised as
//! four clusters of L/S + ADD + MUL + copy unit, each with a private queue register
//! file, connected by a bidirectional ring of queues), compiles the classic
//! dot-product kernel with the full pipeline (unrolling, copy insertion, partitioned
//! modulo scheduling, queue allocation) and prints the key schedule metrics.

use vliw_core::{kernels, LatencyModel, Machine};
use vliw_core::{Compiler, CompilerConfig};

fn main() {
    let latencies = LatencyModel::default();

    // The paper's clustered machine: 4 clusters x (1 L/S + 1 ADD + 1 MUL + copy).
    let machine = Machine::paper_clustered(4, latencies);
    println!(
        "machine: {} ({} compute FUs in {} clusters, {} private queues per cluster, \
         {} communication queues per ring direction)",
        machine.name(),
        machine.num_compute_fus(),
        machine.num_clusters(),
        machine.cluster(vliw_core::ClusterId(0)).private_queues,
        machine.comm_queues_per_direction(),
    );

    // s = s + a[i] * b[i], executed 1000 times.
    let lp = kernels::dot_product(latencies, 1000);
    println!("loop: {} ({} operations per iteration)", lp.name, lp.ops_per_iteration());

    let compiler = Compiler::new(CompilerConfig::paper_defaults(machine));
    let out = compiler.compile(&lp).expect("the dot product is schedulable");

    println!();
    println!("unroll factor        : {}", out.unroll_factor);
    println!("copy ops inserted    : {}", out.num_copies);
    println!("scheduled operations : {}", out.transformed.num_ops());
    println!("ResMII / RecMII / MII: {} / {} / {}", out.res_mii, out.rec_mii, out.mii);
    println!("initiation interval  : {} (MII achieved: {})", out.ii(), out.achieved_mii());
    println!("stage count          : {}", out.stage_count);
    println!("static IPC           : {:.2}", out.ipc.static_ipc);
    println!("dynamic IPC          : {:.2}", out.ipc.dynamic_ipc);
    println!("queues required      : {}", out.queues_required());
    println!("conventional RF regs : {}", out.registers_required);
    if let Some(comm) = &out.comm {
        println!(
            "inter-cluster values : {} ({} stay local)",
            comm.cross_cluster_values, comm.local_values
        );
        println!("fits Fig. 7 cluster  : {}", comm.fits_cluster_budget(8, 8, 8));
    }

    // Per-operation placement.
    println!("\nkernel placement (operation -> cycle, stage, cluster):");
    for op in out.transformed.ops() {
        let cycle = out.schedule.start_of(op.id);
        println!(
            "  {:>5}  {:>4}  slot {:>2}  stage {}  {}",
            op.to_string(),
            cycle,
            out.schedule.slot_of(op.id),
            out.schedule.stage_of(op.id),
            out.schedule.cluster_of(&compiler.config().machine, op.id),
        );
    }
}
