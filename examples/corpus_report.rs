//! Corpus-wide report: sweeps the synthetic Perfect-Club-like corpus through the
//! full pipeline on several machines and prints summary statistics.
//!
//! ```text
//! cargo run --release --example corpus_report            # 300 loops (quick)
//! cargo run --release --example corpus_report -- 1258    # the full paper-sized corpus
//! ```

use vliw_core::analysis::{mean, pct, TextTable};
use vliw_core::experiments::{par_map, ExperimentConfig};
use vliw_core::machine::copy_units_for;
use vliw_core::{Compiler, CompilerConfig, LatencyModel, Machine};

fn main() {
    let loops: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let cfg = ExperimentConfig::quick(loops, 1998);
    let corpus = cfg.corpus();
    println!(
        "corpus: {} loops, {:.1} operations per loop on average, {} with a recurrence circuit\n",
        corpus.len(),
        mean(&corpus.iter().map(|l| l.ddg.num_ops() as f64).collect::<Vec<_>>()),
        corpus.iter().filter(|l| l.ddg.has_recurrence()).count(),
    );

    let mut table = TextTable::new(vec![
        "machine",
        "mean II",
        "MII achieved",
        "mean stage count",
        "mean static IPC",
        "mean dynamic IPC",
        "mean queues",
        "mean copies",
    ]);

    let lat = LatencyModel::default();
    let machines: Vec<Machine> = vec![
        Machine::single_cluster(4, copy_units_for(4), 1024, lat),
        Machine::single_cluster(6, copy_units_for(6), 1024, lat),
        Machine::single_cluster(12, copy_units_for(12), 1024, lat),
        Machine::paper_clustered(4, lat),
        Machine::paper_clustered(6, lat),
    ];

    for machine in machines {
        let name = machine.name().to_string();
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine));
        let results: Vec<_> = par_map(&corpus, cfg.threads, |lp| compiler.compile(lp).ok())
            .into_iter()
            .flatten()
            .collect();
        let f = |extract: &dyn Fn(&vliw_core::Compilation) -> f64| {
            mean(&results.iter().map(extract).collect::<Vec<_>>())
        };
        table.row(vec![
            name,
            format!("{:.2}", f(&|c| c.ii() as f64)),
            pct(results.iter().filter(|c| c.achieved_mii()).count() as f64 / results.len() as f64),
            format!("{:.2}", f(&|c| c.stage_count as f64)),
            format!("{:.2}", f(&|c| c.ipc.static_ipc)),
            format!("{:.2}", f(&|c| c.ipc.dynamic_ipc)),
            format!("{:.1}", f(&|c| c.queues_required() as f64)),
            format!("{:.1}", f(&|c| c.num_copies as f64)),
        ]);
    }

    println!("{table}");
}
