//! Hand-built loop, end to end, with every intermediate artefact printed.
//!
//! ```text
//! cargo run --release --example dot_product
//! ```
//!
//! Unlike `quickstart`, which uses the high-level pipeline, this example drives the
//! substrate crates directly: it builds the dependence graph of
//! `y[i] = y[i] + alpha * x[i]` by hand, computes the MII bounds, runs iterative
//! modulo scheduling on a single-cluster machine and the partitioning scheduler on a
//! clustered machine, inserts copy operations, allocates queues with the
//! Q-compatibility test and compares against the conventional-register-file
//! baseline.  It is intended as a guided tour of the library's layers.

use vliw_core::analysis::{dynamic_ipc, static_ipc};
use vliw_core::ddg::{DdgBuilder, OpKind};
use vliw_core::qrf::{
    allocate_queues, conventional_registers_required, insert_copies, use_lifetimes,
};
use vliw_core::sched::{modulo_schedule, rec_mii, res_mii, ImsOptions};
use vliw_core::{partition_schedule, LatencyModel, Machine, PartitionOptions};

fn main() {
    let lat = LatencyModel::default();

    // ---- 1. Build the DAXPY dependence graph by hand. --------------------------
    let mut b = DdgBuilder::new(lat);
    let load_x = b.op(OpKind::Load);
    let load_y = b.op(OpKind::Load);
    let mul = b.op(OpKind::Mul); // alpha * x[i]
    let add = b.op(OpKind::Add); // y[i] + alpha * x[i]
    let store = b.op(OpKind::Store); // y[i] = ...
    b.flow(load_x, mul);
    b.flow(load_y, add);
    b.flow(mul, add);
    b.flow(add, store);
    b.memory(load_y, store, 0);
    let lp = b.finish_loop("daxpy_by_hand", 10_000);
    println!("graph:\n{}", vliw_core::ddg::dot::to_dot(&lp.ddg, &lp.name));

    // ---- 2. Lower bounds and a single-cluster schedule. -------------------------
    let single = Machine::single_cluster(6, 2, 32, lat);
    println!("ResMII = {}, RecMII = {}", res_mii(&lp.ddg, &single).unwrap(), rec_mii(&lp.ddg));
    let ims = modulo_schedule(&lp.ddg, &single, ImsOptions::default()).unwrap();
    println!(
        "single cluster (6 FUs): II = {}, stage count = {}, static IPC = {:.2}, dynamic IPC = {:.2}",
        ims.schedule.ii,
        ims.schedule.stage_count(),
        static_ipc(lp.ops_per_iteration(), &ims.schedule),
        dynamic_ipc(lp.ops_per_iteration(), &ims.schedule, lp.trip_count),
    );
    println!(
        "conventional register file needs {} registers",
        conventional_registers_required(&lp.ddg, &ims.schedule)
    );

    // ---- 3. Copy insertion and queue allocation (QRF machine). ------------------
    let rewritten = insert_copies(&lp.ddg, &lat);
    println!(
        "copy insertion: {} copies added ({} ops total)",
        rewritten.num_copies(),
        rewritten.ddg.num_ops()
    );
    let ims_q = modulo_schedule(&rewritten.ddg, &single, ImsOptions::default()).unwrap();
    let lifetimes = use_lifetimes(&rewritten.ddg, &ims_q.schedule);
    let queues = allocate_queues(&lifetimes, ims_q.schedule.ii);
    println!(
        "queue register file: {} lifetimes in {} queues (max depth {}) at II {}",
        lifetimes.len(),
        queues.num_queues(),
        queues.max_queue_depth(),
        ims_q.schedule.ii
    );

    // ---- 4. Partitioned schedule on the clustered machine. ----------------------
    let clustered = Machine::paper_clustered(4, lat);
    let part = partition_schedule(&rewritten.ddg, &clustered, PartitionOptions::default()).unwrap();
    println!(
        "clustered (4 x 3 FUs): II = {} (single-cluster II was {}), {} values cross clusters, \
         fits the Fig. 7 cluster: {}",
        part.schedule.ii,
        ims_q.schedule.ii,
        part.comm.cross_cluster_values,
        part.comm.fits_cluster_budget(8, 8, 8)
    );
    for op in rewritten.ddg.ops() {
        println!(
            "  {:>6} -> cycle {:>2}, {}",
            op.to_string(),
            part.schedule.start_of(op.id),
            part.schedule.cluster_of(&clustered, op.id)
        );
    }
}
