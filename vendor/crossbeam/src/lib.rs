//! Vendored stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this crate provides the one
//! API the workspace uses — [`thread::scope`] with scoped [`thread::Scope::spawn`] —
//! implemented on top of `std::thread::scope`.  As in crossbeam, `scope` returns
//! `Err` when any spawned thread panicked instead of unwinding through the caller.

pub mod thread {
    //! Scoped threads, crossbeam-style.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle: threads spawned through it may borrow from the enclosing
    /// stack frame and are joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.  The closure receives the scope again so it can
        /// spawn nested work, exactly like crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Runs `f` with a scope in which borrowed threads can be spawned; all spawned
    /// threads are joined before this returns.  Returns `Err` with the panic payload
    /// if `f` or any un-joined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let mut out = vec![0u64; 4];
            scope(|s| {
                for (slot, &x) in out.iter_mut().zip(&data) {
                    s.spawn(move |_| *slot = x * 10);
                }
            })
            .unwrap();
            assert_eq!(out, vec![10, 20, 30, 40]);
        }

        #[test]
        fn panicking_worker_surfaces_as_err() {
            let r = scope(|s| {
                s.spawn(|_| panic!("worker down"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawn_through_the_closure_scope() {
            let mut a = 0;
            let mut b = 0;
            scope(|s| {
                let (ra, rb) = (&mut a, &mut b);
                s.spawn(move |inner| {
                    *ra = 1;
                    inner.spawn(move |_| *rb = 2);
                });
            })
            .unwrap();
            assert_eq!((a, b), (1, 2));
        }
    }
}
