//! Vendored stand-in for `serde_json`, working over the [`serde::Value`] model of
//! the vendored serde stub: [`to_string`] / [`to_string_pretty`] render any
//! `serde::Serialize` type as JSON text, [`from_str`] parses JSON back into any
//! `serde::Deserialize` type.  Floats are rendered with Rust's shortest round-trip
//! formatting, so emit→parse is lossless — which is what the golden-baseline
//! regression test relies on.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching upstream `serde_json`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Emission.
// ---------------------------------------------------------------------------

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some("  "), 0)?;
    Ok(out)
}

/// Converts any serializable value into the [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.serialize()
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::deserialize(value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // `{:?}` prints the shortest string that round-trips, keeping a `.0`
            // on integral floats so the value re-parses as a float.
            out.push_str(&format!("{f:?}"));
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            write_sequence(out, items.len(), indent, depth, |out, i, ind, d| {
                write_value(out, &items[i], ind, d)
            })?;
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            push_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn write_sequence(
    out: &mut String,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<&str>, usize) -> Result<()>,
) -> Result<()> {
    if len == 0 {
        out.push_str("[]");
        return Ok(());
    }
    out.push('[');
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        push_newline_indent(out, indent, depth + 1);
        write_item(out, i, indent, depth + 1)?;
    }
    push_newline_indent(out, indent, depth);
    out.push(']');
    Ok(())
}

fn push_newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_and_parse() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&String::from("a\"b\n")).unwrap(), "\"a\\\"b\\n\"");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn float_round_trip_is_lossless() {
        for f in [0.1, 1.0 / 3.0, 123456.789, 1e-12, -0.0, 2.0f64.powi(60)] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {text} -> {back}");
        }
    }

    #[test]
    fn nan_and_infinity_are_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn arrays_and_objects_round_trip() {
        let v = Value::Object(vec![
            (String::from("xs"), Value::Array(vec![Value::Int(1), Value::Int(2)])),
            (String::from("name"), Value::String(String::from("dot"))),
            (String::from("opt"), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"xs\":[1,2],\"name\":\"dot\",\"opt\":null}");
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);

        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"xs\": [\n    1,\n    2\n  ]"));
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }

    #[test]
    fn typed_collections_round_trip() {
        let xs = vec![1.0f64, 2.5, -3.25];
        let text = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&text).unwrap(), xs);
        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }
}
