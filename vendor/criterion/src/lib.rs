//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides the
//! benchmarking API surface the workspace's `benches/` use — benchmark groups,
//! `bench_function` / `bench_with_input`, `criterion_group!` / `criterion_main!` —
//! with a simple wall-clock measurement loop instead of criterion's statistical
//! machinery.  Results are printed as `group/name: <mean time>/iter (<iters>)`.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness handle passed to `criterion_group!` functions.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration; the stub accepts and ignores criterion's
    /// flags (`--bench`, filters, ...), keeping `cargo bench` invocations working.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (warm_up, measurement, samples) =
            (self.warm_up_time, self.measurement_time, self.sample_size);
        run_one(name, warm_up, measurement, samples, f);
        self
    }
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.warm_up_time, self.measurement_time, self.sample_size, f);
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.warm_up_time, self.measurement_time, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark (`function/parameter`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The measurement loop handle.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, repeating it until the sample budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        loop {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

fn run_one<F>(name: &str, warm_up: Duration, measurement: Duration, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One warm-up pass (bounded by the warm-up budget).
    let mut warm = Bencher { iters_done: 0, elapsed: Duration::ZERO, budget: warm_up };
    f(&mut warm);

    // Measurement: the closure calls `iter`, which repeats until the budget is
    // spent; the sample size bounds how often we re-enter the closure.
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let per_sample = measurement / sample_size.max(1) as u32;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO, budget: per_sample };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters_done;
        if total >= measurement {
            break;
        }
    }
    let mean = if iters == 0 { Duration::ZERO } else { total / iters as u32 };
    println!("bench {name}: {mean:?}/iter ({iters} iters in {total:?})");
}

/// Declares a group-runner function from benchmark functions, as upstream criterion
/// does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts_iterations() {
        let mut c = Criterion {
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            sample_size: 2,
        };
        let mut calls = 0u64;
        let mut group = c.benchmark_group("test");
        group.sample_size(2).warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("mii", "dot_product").to_string(), "mii/dot_product");
    }
}
