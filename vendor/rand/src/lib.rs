//! Vendored stand-in for the `rand` crate (0.8-style API subset).
//!
//! The build environment has no access to crates.io, so this crate provides the
//! slice of `rand` the workspace uses: [`rngs::SmallRng`], [`SeedableRng`] and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.  The generator is
//! xoshiro256++ seeded through SplitMix64 — a different stream than upstream
//! `SmallRng`, but with the same determinism guarantees the workspace relies on
//! (identical seeds produce identical corpora on every platform).

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (the only constructor the workspace
    /// uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut sm = SplitMix64(state);
        for chunk in bytes.chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used to expand small seeds into full generator state.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive {
                    assert!(lo_w <= hi_w, "gen_range: empty range");
                    (hi_w - lo_w + 1) as u128
                } else {
                    assert!(lo_w < hi_w, "gen_range: empty range");
                    (hi_w - lo_w) as u128
                };
                // Unbiased bounded sampling via 128-bit widening multiply with
                // rejection of the short tail (Lemire's method).
                let mut x = rng.next_u64();
                if span != 0 && !span.is_power_of_two() {
                    let threshold = (u128::from(u64::MAX) + 1) % span;
                    loop {
                        let m = u128::from(x) * span;
                        if (m & u128::from(u64::MAX)) >= threshold {
                            return (lo_w + (m >> 64) as i128) as $t;
                        }
                        x = rng.next_u64();
                    }
                }
                let offset = if span == 0 {
                    u128::from(x) // span 2^64: every word is a valid offset
                } else {
                    (u128::from(x) * span) >> 64
                };
                (lo_w + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform(rng: &mut dyn RngCore, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let unit = standard_f64(rng.next_u64());
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform(rng: &mut dyn RngCore, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let unit = standard_f64(rng.next_u64()) as f32;
        lo + unit * (hi - lo)
    }
}

/// Uniform `[0, 1)` from 64 random bits (53-bit mantissa method).
fn standard_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a value from the standard distribution.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        standard_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        standard_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        standard_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The generators offered by this stub.

    use super::{RngCore, SeedableRng};

    /// A small, fast, reproducible generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&y));
            let f: f64 = rng.gen_range(-2.0..=3.0);
            assert!((-2.0..=3.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac} far from 0.3");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn small_int_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
