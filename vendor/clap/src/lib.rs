//! Vendored stand-in for the `clap` crate (builder-API subset).
//!
//! The build environment has no access to crates.io, so this crate implements the
//! slice of clap's builder API the workspace's CLIs use: commands with subcommands,
//! long options with values and defaults, `global` options that may appear before
//! or after the subcommand, generated `--help`, and typed retrieval through
//! [`ArgMatches::get_one`].

use std::collections::BTreeMap;
use std::fmt;

/// An argument definition (long options only; the workspace's CLIs define no
/// positionals or short flags).
#[derive(Debug, Clone)]
pub struct Arg {
    id: String,
    long: Option<String>,
    help: String,
    default_value: Option<String>,
    value_name: Option<String>,
    global: bool,
}

impl Arg {
    /// Creates an argument with the given id (also the default long name).
    pub fn new(id: impl Into<String>) -> Self {
        Arg {
            id: id.into(),
            long: None,
            help: String::new(),
            default_value: None,
            value_name: None,
            global: false,
        }
    }

    /// Sets the long option name (`--name`).
    pub fn long(mut self, name: impl Into<String>) -> Self {
        self.long = Some(name.into());
        self
    }

    /// Sets the help text.
    pub fn help(mut self, text: impl Into<String>) -> Self {
        self.help = text.into();
        self
    }

    /// Sets the value used when the option is absent.
    pub fn default_value(mut self, value: impl Into<String>) -> Self {
        self.default_value = Some(value.into());
        self
    }

    /// Sets the placeholder shown in help (`--seed <N>`).
    pub fn value_name(mut self, name: impl Into<String>) -> Self {
        self.value_name = Some(name.into());
        self
    }

    /// Makes the option recognized before and after subcommands.
    pub fn global(mut self, yes: bool) -> Self {
        self.global = yes;
        self
    }

    fn long_name(&self) -> &str {
        self.long.as_deref().unwrap_or(&self.id)
    }
}

/// Why argument parsing stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// `--help` was requested; the message is the help text.
    DisplayHelp,
    /// The command line was invalid.
    InvalidValue,
}

/// A parse error (or help request).
#[derive(Debug, Clone)]
pub struct Error {
    kind: ErrorKind,
    message: String,
}

impl Error {
    /// The error category.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// Prints the error and exits: code 0 for help, 2 for invalid usage.
    pub fn exit(&self) -> ! {
        match self.kind {
            ErrorKind::DisplayHelp => {
                println!("{}", self.message);
                std::process::exit(0);
            }
            ErrorKind::InvalidValue => {
                eprintln!("error: {}", self.message);
                std::process::exit(2);
            }
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A (sub)command definition.
#[derive(Debug, Clone)]
pub struct Command {
    name: String,
    about: String,
    args: Vec<Arg>,
    subcommands: Vec<Command>,
    subcommand_required: bool,
}

impl Command {
    /// Creates a command.
    pub fn new(name: impl Into<String>) -> Self {
        Command {
            name: name.into(),
            about: String::new(),
            args: Vec::new(),
            subcommands: Vec::new(),
            subcommand_required: false,
        }
    }

    /// Sets the one-line description shown in help.
    pub fn about(mut self, text: impl Into<String>) -> Self {
        self.about = text.into();
        self
    }

    /// Adds an argument.
    pub fn arg(mut self, arg: Arg) -> Self {
        self.args.push(arg);
        self
    }

    /// Adds a subcommand.
    pub fn subcommand(mut self, cmd: Command) -> Self {
        self.subcommands.push(cmd);
        self
    }

    /// Requires a subcommand to be given.
    pub fn subcommand_required(mut self, yes: bool) -> Self {
        self.subcommand_required = yes;
        self
    }

    /// The command's name.
    pub fn get_name(&self) -> &str {
        &self.name
    }

    /// Parses `std::env::args()`, printing help / errors and exiting on failure.
    pub fn get_matches(self) -> ArgMatches {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match self.try_get_matches_from_strings(argv) {
            Ok(m) => m,
            Err(e) => e.exit(),
        }
    }

    /// Parses the given argument list (the first item is the program name, as with
    /// upstream clap).
    pub fn try_get_matches_from<I, S>(self, argv: I) -> Result<ArgMatches, Error>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let argv: Vec<String> = argv.into_iter().map(Into::into).skip(1).collect();
        self.try_get_matches_from_strings(argv)
    }

    fn try_get_matches_from_strings(self, argv: Vec<String>) -> Result<ArgMatches, Error> {
        let mut matches = ArgMatches::default();
        self.parse_into(&argv, 0, &mut Vec::new(), &mut matches)?;
        Ok(matches)
    }

    /// Recursive-descent parse.  `inherited` carries the global args of every
    /// ancestor command so they are recognized after a subcommand as well; their
    /// values are recorded in the matches level where they were defined is not
    /// tracked — all values land in the current level and are merged upward, which
    /// matches how the workspace reads them (global flags from the root matches).
    fn parse_into(
        &self,
        argv: &[String],
        mut i: usize,
        inherited: &mut Vec<Arg>,
        out: &mut ArgMatches,
    ) -> Result<(), Error> {
        while i < argv.len() {
            let token = &argv[i];
            if token == "-h" || token == "--help" {
                return Err(Error { kind: ErrorKind::DisplayHelp, message: self.render_help() });
            }
            if let Some(rest) = token.strip_prefix("--") {
                let (name, inline_value) = match rest.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (rest, None),
                };
                let arg = self
                    .args
                    .iter()
                    .chain(inherited.iter())
                    .find(|a| a.long_name() == name)
                    .ok_or_else(|| Error {
                        kind: ErrorKind::InvalidValue,
                        message: format!(
                            "unexpected argument '--{name}' for `{}`\n\n{}",
                            self.name,
                            self.render_usage()
                        ),
                    })?
                    .clone();
                let value = match inline_value {
                    Some(v) => v,
                    None => {
                        i += 1;
                        argv.get(i).cloned().ok_or_else(|| Error {
                            kind: ErrorKind::InvalidValue,
                            message: format!("a value is required for '--{name}'"),
                        })?
                    }
                };
                out.values.insert(arg.id.clone(), value);
                i += 1;
                continue;
            }
            // Not an option: must be a subcommand.
            if let Some(sub) = self.subcommands.iter().find(|c| c.name == *token) {
                let mut sub_matches = ArgMatches::default();
                let inherited_len = inherited.len();
                inherited.extend(self.args.iter().filter(|a| a.global).cloned());
                let result = sub.parse_into(argv, i + 1, inherited, &mut sub_matches);
                inherited.truncate(inherited_len);
                result?;
                // Values of global (inherited) options set after the subcommand are
                // visible from the parent matches too.
                for (k, v) in &sub_matches.values {
                    if !out.values.contains_key(k) {
                        out.values.insert(k.clone(), v.clone());
                    }
                }
                out.subcommand = Some(Box::new((sub.name.clone(), sub_matches)));
                return self.apply_defaults(out);
            }
            return Err(Error {
                kind: ErrorKind::InvalidValue,
                message: format!(
                    "unrecognized subcommand or argument '{token}'\n\n{}",
                    self.render_usage()
                ),
            });
        }
        if self.subcommand_required && out.subcommand.is_none() {
            return Err(Error {
                kind: ErrorKind::InvalidValue,
                message: format!("a subcommand is required\n\n{}", self.render_usage()),
            });
        }
        self.apply_defaults(out)
    }

    fn apply_defaults(&self, out: &mut ArgMatches) -> Result<(), Error> {
        for arg in &self.args {
            if let Some(default) = &arg.default_value {
                out.values.entry(arg.id.clone()).or_insert_with(|| default.clone());
            }
        }
        Ok(())
    }

    fn render_usage(&self) -> String {
        let mut usage = format!("Usage: {}", self.name);
        if !self.args.is_empty() {
            usage.push_str(" [OPTIONS]");
        }
        if !self.subcommands.is_empty() {
            usage.push_str(if self.subcommand_required { " <COMMAND>" } else { " [COMMAND]" });
        }
        usage
    }

    /// Renders the help text.
    pub fn render_help(&self) -> String {
        let mut help = String::new();
        if !self.about.is_empty() {
            help.push_str(&self.about);
            help.push_str("\n\n");
        }
        help.push_str(&self.render_usage());
        if !self.subcommands.is_empty() {
            help.push_str("\n\nCommands:\n");
            for sub in &self.subcommands {
                help.push_str(&format!("  {:<16} {}\n", sub.name, sub.about));
            }
        }
        if !self.args.is_empty() {
            help.push_str("\nOptions:\n");
            for arg in &self.args {
                let value_name = arg
                    .value_name
                    .clone()
                    .unwrap_or_else(|| arg.id.to_uppercase().replace('-', "_"));
                let mut line = format!("      --{} <{}>", arg.long_name(), value_name);
                if let Some(d) = &arg.default_value {
                    line.push_str(&format!(" (default: {d})"));
                }
                help.push_str(&format!("  {line:<44} {}\n", arg.help));
            }
        }
        help.push_str("      -h, --help  Print help\n");
        help
    }
}

/// The result of parsing a command line.
#[derive(Debug, Clone, Default)]
pub struct ArgMatches {
    values: BTreeMap<String, String>,
    subcommand: Option<Box<(String, ArgMatches)>>,
}

impl ArgMatches {
    /// Returns the value of option `id`, parsed into `T`.  `None` when the option
    /// was not given and has no default.
    ///
    /// # Panics
    ///
    /// Panics if the raw value does not parse as `T` — callers wanting a clean
    /// diagnostic should fetch a `String` and parse it themselves.
    pub fn get_one<T>(&self, id: &str) -> Option<T>
    where
        T: std::str::FromStr,
        T::Err: fmt::Display,
    {
        self.values.get(id).map(|raw| match raw.parse() {
            Ok(v) => v,
            Err(e) => panic!("invalid value '{raw}' for '--{id}': {e}"),
        })
    }

    /// The chosen subcommand, if any.
    pub fn subcommand(&self) -> Option<(&str, &ArgMatches)> {
        self.subcommand.as_deref().map(|(name, m)| (name.as_str(), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli() -> Command {
        Command::new("app")
            .about("test app")
            .arg(Arg::new("size").long("size").default_value("10").global(true))
            .arg(Arg::new("mode").long("mode").global(true))
            .subcommand(Command::new("run").about("run it"))
            .subcommand(Command::new("list").arg(Arg::new("filter").long("filter")))
    }

    fn parse(argv: &[&str]) -> Result<ArgMatches, Error> {
        cli().try_get_matches_from(std::iter::once("app").chain(argv.iter().copied()))
    }

    #[test]
    fn defaults_apply_when_absent() {
        let m = parse(&[]).unwrap();
        assert_eq!(m.get_one::<usize>("size"), Some(10));
        assert_eq!(m.get_one::<String>("mode"), None);
        assert!(m.subcommand().is_none());
    }

    #[test]
    fn values_parse_with_space_and_equals() {
        let m = parse(&["--size", "42"]).unwrap();
        assert_eq!(m.get_one::<usize>("size"), Some(42));
        let m = parse(&["--size=7"]).unwrap();
        assert_eq!(m.get_one::<usize>("size"), Some(7));
    }

    #[test]
    fn subcommands_are_recognized() {
        let m = parse(&["run"]).unwrap();
        assert_eq!(m.subcommand().map(|(n, _)| n), Some("run"));
        let m = parse(&["list", "--filter", "x"]).unwrap();
        let (name, sub) = m.subcommand().unwrap();
        assert_eq!(name, "list");
        assert_eq!(sub.get_one::<String>("filter"), Some(String::from("x")));
    }

    #[test]
    fn global_options_work_after_the_subcommand() {
        let m = parse(&["run", "--size", "99", "--mode", "fast"]).unwrap();
        assert_eq!(m.get_one::<usize>("size"), Some(99));
        assert_eq!(m.get_one::<String>("mode"), Some(String::from("fast")));
        assert_eq!(m.subcommand().map(|(n, _)| n), Some("run"));
    }

    #[test]
    fn pre_subcommand_value_wins_over_post() {
        let m = parse(&["--size", "1", "run", "--size", "2"]).unwrap();
        // The explicitly-set parent value is not overwritten by the merge-up.
        assert_eq!(m.get_one::<usize>("size"), Some(1));
    }

    #[test]
    fn unknown_arguments_and_subcommands_error() {
        assert!(matches!(parse(&["--nope"]), Err(e) if e.kind() == ErrorKind::InvalidValue));
        assert!(matches!(parse(&["zap"]), Err(e) if e.kind() == ErrorKind::InvalidValue));
        assert!(matches!(parse(&["--size"]), Err(e) if e.kind() == ErrorKind::InvalidValue));
        // Non-global subcommand args are not visible at the top level.
        assert!(matches!(parse(&["--filter", "x"]), Err(e) if e.kind() == ErrorKind::InvalidValue));
    }

    #[test]
    fn help_is_reported_as_display_help() {
        let err = parse(&["--help"]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::DisplayHelp);
        let text = err.to_string();
        assert!(text.contains("test app"));
        assert!(text.contains("--size"));
        assert!(text.contains("run"));
    }

    #[test]
    fn required_subcommand_is_enforced() {
        let cmd = Command::new("app").subcommand_required(true).subcommand(Command::new("go"));
        let err = cmd.clone().try_get_matches_from(["app"]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidValue);
        assert!(cmd.try_get_matches_from(["app", "go"]).is_ok());
    }
}
