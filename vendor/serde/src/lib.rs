//! Vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! simplified serde: instead of upstream's visitor-based `Serializer` /
//! `Deserializer` pair, [`Serialize`] lowers values into a self-describing
//! [`Value`] tree and [`Deserialize`] rebuilds them from it.  Formats (here:
//! `serde_json`) work on `Value`.  The `#[derive(Serialize, Deserialize)]` macros
//! re-exported from `serde_derive` cover plain structs with named fields, which is
//! all the workspace's experiment row types need.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de;

/// A self-describing data-model value — the pivot between typed Rust data and
/// formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / a missing `Option`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (order preserved for stable output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds a value of this type from the data model.
    fn deserialize(v: &Value) -> Result<Self, de::Error>;

    /// Called for struct fields absent from the input; overridden by `Option` to
    /// default to `None`, every other type reports a missing field.
    fn deserialize_missing(field: &str) -> Result<Self, de::Error> {
        Err(de::Error::custom(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for the primitives the workspace uses.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(narrow) => Value::Int(narrow),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, de::Error> {
                let err = || de::Error::unexpected(stringify!($t), v);
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| err()),
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| err()),
                    other => Err(de::Error::unexpected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(de::Error::unexpected("f64", other)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::Error::unexpected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn deserialize_missing(_field: &str) -> Result<Self, de::Error> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(de::Error::unexpected("array", other)),
        }
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(u32::deserialize(&7u32.serialize()).unwrap(), 7);
        assert_eq!(usize::deserialize(&9usize.serialize()).unwrap(), 9);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(String::deserialize(&String::from("hi").serialize()).unwrap(), "hi");
        assert_eq!(Vec::<u64>::deserialize(&vec![1u64, 2].serialize()).unwrap(), vec![1, 2]);
        assert_eq!(Option::<f64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<f64>::deserialize(&2.0f64.serialize()).unwrap(), Some(2.0));
    }

    #[test]
    fn large_u64_uses_uint_and_round_trips() {
        let big = u64::MAX - 3;
        let v = big.serialize();
        assert_eq!(v, Value::UInt(big));
        assert_eq!(u64::deserialize(&v).unwrap(), big);
        assert!(u32::deserialize(&v).is_err());
    }

    #[test]
    fn object_lookup_and_type_errors() {
        let v = Value::Object(vec![(String::from("a"), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
        assert!(bool::deserialize(&v).is_err());
        assert!(String::deserialize(&Value::Int(3)).is_err());
    }
}
