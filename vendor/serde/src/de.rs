//! Deserialization support types.

use crate::{Deserialize, Value};

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }

    /// Creates a type-mismatch error.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error::custom(format!("expected {expected}, got {kind}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Extracts struct field `name` from `entries`, delegating absent fields to
/// [`Deserialize::deserialize_missing`].  Used by the generated `Deserialize` impls.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::deserialize(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
        }
        None => T::deserialize_missing(name),
    }
}
