//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides the
//! subset of proptest the workspace's property tests use: the [`proptest!`] macro
//! with an optional `#![proptest_config(...)]` header, range / tuple /
//! [`collection::vec`] strategies, and the `prop_assert!`, `prop_assert_eq!` and
//! `prop_assume!` macros.  Cases are generated from a deterministic per-test RNG;
//! there is no shrinking — a failing case reports its inputs instead.

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform};

/// Generation strategies: deterministic random value sources.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + std::fmt::Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A / 0);
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
    (A / 0, B / 1, C / 2, D / 3, E / 4);
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

/// A strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case-running machinery used by the [`crate::proptest!`] macro.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Test-run configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case does not count.
        Reject(String),
        /// `prop_assert!` failed: the property is violated.
        Fail(String),
    }

    /// Result of one case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs `cases` successful executions of `case`, feeding it a deterministic
    /// RNG derived from `test_name`.  Panics (failing the `#[test]`) on the first
    /// property violation, reporting the case number; gives up if too many cases
    /// in a row are rejected by `prop_assume!`.
    pub fn run(
        test_name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut SmallRng) -> TestCaseResult,
    ) {
        // Stable seed per test name, so failures reproduce across runs.
        let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut successes = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(config.cases) * 20 + 1000;
        while successes < config.cases {
            attempts += 1;
            if attempts > max_attempts {
                panic!(
                    "proptest `{test_name}`: too many rejected cases \
                     ({successes}/{} succeeded after {attempts} attempts)",
                    config.cases
                );
            }
            match case(&mut rng) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(message)) => {
                    panic!("proptest `{test_name}` failed at case {}: {message}", successes + 1)
                }
            }
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Asserts a condition inside a property test, reporting the formatted message on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{} ({:?} != {:?})", format!($($fmt)*), l, r);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Rejects the current case (it does not count towards the target number of
/// cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...) { body }`
/// becomes a normal `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                let inputs =
                    [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", ");
                let case = || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                };
                case().map_err(|e| match e {
                    $crate::test_runner::TestCaseError::Fail(m) => {
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "{m}\n  inputs: {inputs}"
                        ))
                    }
                    reject => reject,
                })
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_vecs_generate(v in crate::collection::vec((0u32..12, 1u32..10), 1..24)) {
            prop_assert!(!v.is_empty() && v.len() < 24);
            for &(a, b) in &v {
                prop_assert!(a < 12);
                prop_assert!((1..10).contains(&b));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run("always_fails", &ProptestConfig::with_cases(5), |_rng| {
                Err(TestCaseError::Fail(String::from("boom")))
            });
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("always_fails"), "{message}");
        assert!(message.contains("boom"), "{message}");
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let strat = (0u32..1000, 0u32..1000);
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&strat, &mut a), Strategy::generate(&strat, &mut b));
        }
    }
}
