//! Vendored `#[derive(Serialize, Deserialize)]` for the serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`, which are
//! unavailable offline).  Supports the shapes the workspace uses: non-generic
//! structs with named fields, and C-like (unit-variant) enums.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The pieces of a type definition the derives need.
enum Input {
    /// Struct name + named field identifiers.
    Struct { name: String, fields: Vec<String> },
    /// Enum name + unit variant identifiers.
    Enum { name: String, variants: Vec<String> },
}

/// Parses `input` far enough to find the type name and its named fields or unit
/// variants.  Panics (compile error) on unsupported shapes.
fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`) and visibility to the `struct` / `enum` keyword.
    let mut is_enum = false;
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                break;
            }
            Some(_) => continue,
            None => panic!("serde derive: expected `struct` or `enum`"),
        }
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };

    // The body is the next brace group; generics are not supported.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde derive: generic types are not supported by the vendored stub")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde derive: tuple/unit structs are not supported by the vendored stub")
            }
            Some(_) => continue,
            None => panic!("serde derive: expected a braced body"),
        }
    };

    if is_enum {
        Input::Enum { name, variants: parse_variants(body.stream()) }
    } else {
        Input::Struct { name, fields: parse_fields(body.stream()) }
    }
}

/// Extracts the field names from the brace group of a named-field struct.
fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Per field: attributes, optional visibility, `name : type`.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // `pub(crate)` carries a parenthesised group.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde derive: unexpected token {other:?} in struct body"),
                None => return fields,
            }
        };
        fields.push(name);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type up to the next top-level comma (angle brackets are plain
        // puncts in token streams, so track their depth explicitly).
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => continue,
                None => return fields,
            }
        }
    }
}

/// Extracts the variant names from the brace group of a C-like enum.
fn parse_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // attribute group
            }
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                // Only unit variants are supported: next must be `,` or the end.
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    None => break,
                    Some(other) => {
                        panic!("serde derive: only unit enum variants are supported, got {other:?}")
                    }
                }
            }
            Some(other) => panic!("serde derive: unexpected token {other:?} in enum body"),
            None => break,
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse_input(input) {
        Input::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated.parse().expect("serde derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse_input(input) {
        Input::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(entries, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         let entries = v.as_object().ok_or_else(|| \
                             ::serde::de::Error::unexpected(\"object ({name})\", v))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::de::Error::custom(format!(\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::de::Error::unexpected(\"string ({name})\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated.parse().expect("serde derive: generated invalid Deserialize impl")
}
